// Package fpstalker reimplements the FP-Stalker baseline (Vastel et
// al., IEEE S&P 2018): linking evolved browser fingerprints to known
// browser instances, in both its rule-based and learning-based
// variants. The paper under reproduction evaluates FP-Stalker at
// dataset scale and finds that both variants degrade badly — matching
// time grows linearly with the database (Figure 9) and F1 falls
// (Figure 10) — and documents characteristic false positives/negatives
// (Figure 11). This package reproduces the algorithms and the
// evaluation harness behind those figures, and adds the blocked,
// parallel matching engine (engine.go) that removes the Figure 9 wall
// while returning identical rankings.
package fpstalker

import (
	"context"
	"slices"
	"sort"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/hashutil"
	"fpdyn/internal/useragent"
)

// Candidate is one ranked linking candidate.
type Candidate struct {
	ID    string
	Score float64
}

// Linker is the common interface of both variants.
type Linker interface {
	// TopK returns up to k candidate browser IDs for the query, ranked
	// best first. An empty result means "new browser instance".
	TopK(rec *fingerprint.Record, k int) []Candidate
	// Add registers rec as the latest fingerprint of instance id.
	Add(id string, rec *fingerprint.Record)
	// Len returns the number of known instances.
	Len() int
}

// DynamicLinker extends Linker with the operations a long-running
// service needs: cancellable queries, entry eviction, and a canonical
// index digest for crash-recovery verification. Both variants
// implement it.
type DynamicLinker interface {
	Linker
	// TopKCtx is TopK with cooperative cancellation: a ctx that expires
	// mid-scan aborts the scoring workers within a bounded number of
	// candidates and returns ctx's error. A nil ctx never cancels and
	// adds no overhead.
	TopKCtx(ctx context.Context, rec *fingerprint.Record, k int) ([]Candidate, error)
	// Remove evicts id's entry from the table and every index,
	// reporting whether the instance was known.
	Remove(id string) bool
	// IndexDigest returns a canonical hash of the entry table and the
	// blocking index — equal digests mean identical rankings for every
	// query.
	IndexDigest() string
}

// entry is the scorers' working shape: the last known fingerprint of
// one instance, reduced to the preparsed fields scoring consults on
// every comparison — the structured UA, the canonical feature keys,
// and the handful of scalars the rules read. Precomputing these at
// Add time is what keeps per-candidate scoring at integer compares —
// re-deriving them per pair (two regex parses plus ~30 Value.Key
// builds, several of which hash whole font lists) is O(candidates)
// redundant work per query, the dominant term of the paper's Figure 9
// wall.
//
// Entries no longer retain the *fingerprint.Record. Stored instances
// live as rows of the interned SoA table (store.go); the scoring loops
// materialize entry views from rows via soa.fillView, whose slices and
// UA alias the intern pools. Query-side and training-side entries are
// built standalone by newEntry/newPairEntry. Everything a scorer ever
// read off the record is carried here: the raw UA string, the storage
// toggles, the timestamp (as Unix nanoseconds), and the fingerprint
// hashes the exact-match index compares.
type entry struct {
	id    string
	uaStr string // verbatim UserAgent (unparseable-agent rule, raw index)
	ua    *useragent.UA
	keys  []uint64 // hashed non-IP feature keys, in Schema order

	// hrs is the record time as fractional hours since the Unix epoch
	// (0 when the time is the zero value): the recency nudge runs per
	// accepted candidate, and float arithmetic there is far cheaper
	// than time.Time comparisons. timeNS is the same instant in Unix
	// nanoseconds — the pair model's time-gap feature and the index
	// digest both consume it.
	hrs    float64
	timeNS int64

	// fpHash is FP.Hash(false) — the digest/exact-index bucket key.
	// eqHash (FP.Hash(true)) and fontsHash (order-independent font
	// multiset hash) are the pair fingerprint.Equal compares, so the
	// exact-match rule needs no record.
	fpHash    uint64
	eqHash    uint64
	fontsHash uint64

	// Sorted, deduplicated element hashes of the set features the pair
	// model computes Jaccard similarities over. Precomputing them turns
	// the per-pair Jaccard into an allocation-free merge walk instead
	// of building two maps per candidate.
	fonts, plugins, langs []uint64

	ok           bool // ua parsed
	cookie       bool // CookieEnabled (rule 4, pair storage feature)
	localStorage bool // LocalStorage (rule 4, pair storage feature)
	hasTime      bool // record time non-zero
}

func newEntry(id string, rec *fingerprint.Record) *entry {
	fp := rec.FP
	e := &entry{
		id:    id,
		uaStr: fp.UserAgent,
		keys:  featureKeys(fp),
		// UnixNano of the zero time is an out-of-range constant, but a
		// deterministic one: the digest prints it verbatim (as the
		// record-carrying layout did) and every arithmetic use is gated
		// on hasTime.
		timeNS:       rec.Time.UnixNano(),
		fpHash:       fp.Hash(false),
		eqHash:       fp.Hash(true),
		fontsHash:    hashutil.HashSet(fp.Fonts),
		cookie:       fp.CookieEnabled,
		localStorage: fp.LocalStorage,
	}
	if !rec.Time.IsZero() {
		e.hrs = float64(e.timeNS) / float64(time.Hour)
		e.hasTime = true
	}
	if ua, err := useragent.CachedParse(fp.UserAgent); err == nil {
		e.ua, e.ok = &ua, true
	}
	return e
}

// newPairEntry is newEntry plus the sorted set-feature hashes the pair
// model's Jaccard features consume. The rule-based linker never needs
// them, so only the learning paths pay for building them.
func newPairEntry(id string, rec *fingerprint.Record) *entry {
	e := newEntry(id, rec)
	e.fonts = sortedHashSet(rec.FP.Fonts)
	e.plugins = sortedHashSet(rec.FP.Plugins)
	e.langs = sortedHashSet(rec.FP.Languages)
	return e
}

// sortedHashSet hashes each element and returns the sorted unique
// hashes — the merge-friendly set representation jaccardSorted walks.
func sortedHashSet(ss []string) []uint64 {
	if len(ss) == 0 {
		return nil
	}
	hs := make([]uint64, len(ss))
	for i, s := range ss {
		hs[i] = hashutil.Hash64(s)
	}
	slices.Sort(hs)
	out := hs[:1]
	for _, h := range hs[1:] {
		if h != out[len(out)-1] {
			out = append(out, h)
		}
	}
	return out
}

// nonIPSchema lists the non-IP feature descriptors in Schema order;
// rareAt marks the positions of the rarely-changing set (canvas,
// fonts, GPU renderer, GPU images).
var nonIPSchema, rareAt = func() ([]fingerprint.ID, []bool) {
	var ids []fingerprint.ID
	var rare []bool
	for _, d := range fingerprint.Schema {
		if d.IsIP {
			continue
		}
		ids = append(ids, d.ID)
		switch d.ID {
		case fingerprint.FeatCanvas, fingerprint.FeatFontList,
			fingerprint.FeatGPURenderer, fingerprint.FeatGPUImage:
			rare = append(rare, true)
		default:
			rare = append(rare, false)
		}
	}
	return ids, rare
}()

// numNonIP is the number of non-IP schema features — the denominator
// of the rule-based similarity score.
var numNonIP = len(nonIPSchema)

// Positions of the individually-compared features inside a keys
// vector. The pair model's equality features read these instead of the
// record fields: the schema's Value() canonicalization is injective
// for each (Timezone renders as the decimal offset, the rest are the
// verbatim strings), so key equality matches field equality up to the
// same ~2^-64 hash-collision odds featureKeys documents.
var keyIdxTimezone, keyIdxCanvas, keyIdxGPURenderer, keyIdxAudio,
	keyIdxScreen, keyIdxGPUImage = func() (tz, cv, gr, au, sc, gi int) {
	for i, id := range nonIPSchema {
		switch id {
		case fingerprint.FeatTimezone:
			tz = i
		case fingerprint.FeatCanvas:
			cv = i
		case fingerprint.FeatGPURenderer:
			gr = i
		case fingerprint.FeatAudio:
			au = i
		case fingerprint.FeatScreenResolution:
			sc = i
		case fingerprint.FeatGPUImage:
			gi = i
		}
	}
	return
}()

// featureKeys precomputes a 64-bit hash of the canonical key of every
// non-IP schema feature, in Schema order. Fixed-width hashes make the
// per-pair comparison ~30 integer equality checks instead of string
// compares over font-list digests; a hash collision misreading one
// differing feature as equal happens with probability ~2^-64 per pair,
// far below the noise floor of the similarity scores it feeds.
func featureKeys(fp *fingerprint.Fingerprint) []uint64 {
	keys := make([]uint64, len(nonIPSchema))
	for i, id := range nonIPSchema {
		v := fp.Value(id)
		if v.Kind == fingerprint.KindSet {
			keys[i] = hashutil.HashSet(v.Set)
		} else {
			keys[i] = hashutil.Hash64(v.Str)
		}
	}
	return keys
}

// countKeyDiffs counts differing non-IP features between two
// precomputed key slices, and separately the differing members of the
// rarely-changing set.
func countKeyDiffs(a, b []uint64) (total, rare int) {
	b = b[:len(a)] // keys always share the schema length; hoist the bounds check
	for i := range a {
		if a[i] != b[i] {
			total++
			if rareAt[i] {
				rare++
			}
		}
	}
	return total, rare
}

// countKeyDiffsBudget is countKeyDiffs with the rule-based linker's
// budgets applied inline: it bails at the first feature that exceeds
// either cap, so clearly-different same-bucket entries are rejected
// without scanning the whole schema. ok=false means over budget.
func countKeyDiffsBudget(a, b []uint64, maxTotal, maxRare int) (total int, ok bool) {
	b = b[:len(a)] // keys always share the schema length; hoist the bounds check
	rare := 0
	for i := range a {
		if a[i] != b[i] {
			total++
			if total > maxTotal {
				return 0, false
			}
			if rareAt[i] {
				rare++
				if rare > maxRare {
					return 0, false
				}
			}
		}
	}
	return total, true
}

// countFeatureDiffs counts differing non-IP schema features between two
// fingerprints, and separately the differing members of the
// rarely-changing set. Hot paths precompute featureKeys and call
// countKeyDiffs directly.
func countFeatureDiffs(a, b *fingerprint.Fingerprint) (total, rare int) {
	return countKeyDiffs(featureKeys(a), featureKeys(b))
}

// rankBefore is the total order of candidate rankings: score
// descending, then ID ascending. IDs are unique, so the order is
// strict — serial, parallel and blocked runs all rank identically.
func rankBefore(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// sortCandidates orders best-first with a deterministic tiebreak.
func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		return rankBefore(cands[i], cands[j])
	})
}
