// Package fpstalker reimplements the FP-Stalker baseline (Vastel et
// al., IEEE S&P 2018): linking evolved browser fingerprints to known
// browser instances, in both its rule-based and learning-based
// variants. The paper under reproduction evaluates FP-Stalker at
// dataset scale and finds that both variants degrade badly — matching
// time grows linearly with the database (Figure 9) and F1 falls
// (Figure 10) — and documents characteristic false positives/negatives
// (Figure 11). This package reproduces the algorithms and the
// evaluation harness behind those figures.
package fpstalker

import (
	"sort"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// Candidate is one ranked linking candidate.
type Candidate struct {
	ID    string
	Score float64
}

// Linker is the common interface of both variants.
type Linker interface {
	// TopK returns up to k candidate browser IDs for the query, ranked
	// best first. An empty result means "new browser instance".
	TopK(rec *fingerprint.Record, k int) []Candidate
	// Add registers rec as the latest fingerprint of instance id.
	Add(id string, rec *fingerprint.Record)
	// Len returns the number of known instances.
	Len() int
}

// entry is the last known fingerprint of one instance, with
// preparsed fields the rules consult on every comparison.
type entry struct {
	id  string
	rec *fingerprint.Record
	ua  useragent.UA
	ok  bool // ua parsed
}

func newEntry(id string, rec *fingerprint.Record) *entry {
	e := &entry{id: id, rec: rec}
	if ua, err := useragent.Parse(rec.FP.UserAgent); err == nil {
		e.ua, e.ok = ua, true
	}
	return e
}

// countFeatureDiffs counts differing non-IP schema features between two
// fingerprints, and separately the differing members of the
// rarely-changing set (canvas, fonts, GPU renderer, GPU images).
func countFeatureDiffs(a, b *fingerprint.Fingerprint) (total, rare int) {
	for _, d := range fingerprint.Schema {
		if d.IsIP {
			continue
		}
		if a.Value(d.ID).Key() != b.Value(d.ID).Key() {
			total++
			switch d.ID {
			case fingerprint.FeatCanvas, fingerprint.FeatFontList,
				fingerprint.FeatGPURenderer, fingerprint.FeatGPUImage:
				rare++
			}
		}
	}
	return total, rare
}

// sortCandidates orders best-first with a deterministic tiebreak.
func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].ID < cands[j].ID
	})
}
