package fpstalker

import (
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

func chromeRecord(version useragent.Version, t time.Time) *fingerprint.Record {
	ua := useragent.UA{Browser: useragent.Chrome, BrowserVersion: version, OS: useragent.Windows, OSVersion: useragent.V(10)}
	return &fingerprint.Record{
		Time: t, UserID: "u", Cookie: "c",
		Browser: useragent.Chrome, OS: useragent.Windows,
		FP: &fingerprint.Fingerprint{
			UserAgent: ua.String(),
			Accept:    "text/html", Encoding: "gzip, deflate, br", Language: "en-US,en;q=0.9",
			HeaderList:    []string{"Host", "User-Agent"},
			Plugins:       []string{"Chrome PDF Plugin"},
			CookieEnabled: true, WebGL: true, LocalStorage: true,
			TimezoneOffset: 60,
			Languages:      []string{"en-US"},
			Fonts:          []string{"Arial", "Calibri"},
			CanvasHash:     "c1",
			GPUVendor:      "NVIDIA Corporation", GPURenderer: "GeForce GTX 970",
			GPUType:  "ANGLE (Direct3D11)",
			CPUCores: 4, CPUClass: "x86",
			AudioInfo: "channels:2;rate:44100", ScreenResolution: "1920x1080",
			ColorDepth: 24, PixelRatio: "1",
			ConsLanguage: true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			GPUImageHash: "g1",
		},
	}
}

var tBase = time.Date(2018, 2, 1, 0, 0, 0, 0, time.UTC)

func TestRuleExactMatch(t *testing.T) {
	l := NewRuleLinker()
	rec := chromeRecord(useragent.V(63, 0, 3239, 132), tBase)
	l.Add("a", rec)
	got := l.TopK(chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour)), 3)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("TopK = %v", got)
	}
}

func TestRuleLinksAcrossUpdate(t *testing.T) {
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63, 0, 3239, 132), tBase))
	// Updated Chrome with a changed canvas: still the same instance.
	q := chromeRecord(useragent.V(64, 0, 3282, 140), tBase.Add(72*time.Hour))
	q.FP.CanvasHash = "c2"
	got := l.TopK(q, 3)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("TopK = %v, want [a]", got)
	}
}

func TestRuleRejectsDowngrade(t *testing.T) {
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(64, 0, 3282, 140), tBase))
	got := l.TopK(chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour)), 3)
	if len(got) != 0 {
		t.Fatalf("downgrade linked: %v", got)
	}
}

func TestRuleRejectsDifferentFamily(t *testing.T) {
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63), tBase))
	q := chromeRecord(useragent.V(63), tBase.Add(time.Hour))
	ff := useragent.UA{Browser: useragent.Firefox, BrowserVersion: useragent.V(58), OS: useragent.Windows, OSVersion: useragent.V(10)}
	q.FP.UserAgent = ff.String()
	if got := l.TopK(q, 3); len(got) != 0 {
		t.Fatalf("cross-family linked: %v", got)
	}
}

func TestRuleFigure11bStorageFalseNegative(t *testing.T) {
	// Figure 11(b): disabling cookies+localStorage breaks the rule-based
	// link even though it is the same instance.
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63, 0, 3239, 132), tBase))
	q := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour))
	q.FP.CookieEnabled = false
	q.FP.LocalStorage = false
	if got := l.TopK(q, 10); len(got) != 0 {
		t.Fatalf("storage toggle should break the link (paper FN), got %v", got)
	}
}

func TestRuleFigure11aDesktopRequestFalseNegative(t *testing.T) {
	// Figure 11(a): a desktop page on a mobile device changes the UA
	// wholesale; FP-Stalker fails to link.
	l := NewRuleLinker()
	mob := chromeRecord(useragent.V(77, 0, 3865, 92), tBase)
	mUA := useragent.UA{Browser: useragent.ChromeMobile, BrowserVersion: useragent.V(77, 0, 3865, 92), OS: useragent.Android, OSVersion: useragent.V(9), Device: "SM-N960U", Mobile: true}
	mob.FP.UserAgent = mUA.String()
	l.Add("a", mob)
	q := chromeRecord(useragent.V(77, 0, 3865, 92), tBase.Add(time.Hour))
	q.FP.UserAgent = mUA.RequestDesktop().String()
	if got := l.TopK(q, 10); len(got) != 0 {
		t.Fatalf("desktop request should defeat the rules (paper FN), got %v", got)
	}
}

func TestRuleFigure11cCPUCoresFalsePositive(t *testing.T) {
	// Figure 11(c): two different instances identical except CPU cores
	// get linked — the rules do not constrain hardware counts.
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63, 0, 3239, 132), tBase))
	q := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour))
	q.FP.CPUCores = 2
	got := l.TopK(q, 10)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("CPU-core difference should still link (paper FP), got %v", got)
	}
}

func TestRuleFigure11dDeviceModelFalsePositive(t *testing.T) {
	// Figure 11(d): Samsung J330 vs G920, otherwise identical → linked.
	l := NewRuleLinker()
	a := chromeRecord(useragent.V(6, 2), tBase)
	aUA := useragent.UA{Browser: useragent.Samsung, BrowserVersion: useragent.V(6, 2), OS: useragent.Android, OSVersion: useragent.V(7, 0), Device: "SM-J330F", Mobile: true}
	a.FP.UserAgent = aUA.String()
	l.Add("a", a)
	q := chromeRecord(useragent.V(6, 2), tBase.Add(time.Hour))
	bUA := aUA
	bUA.Device = "SM-G920F"
	q.FP.UserAgent = bUA.String()
	got := l.TopK(q, 10)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("device-model difference should still link (paper FP), got %v", got)
	}
}

func TestRuleTooManyDiffsRejected(t *testing.T) {
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63), tBase))
	q := chromeRecord(useragent.V(63), tBase.Add(time.Hour))
	q.FP.CanvasHash = "cX"
	q.FP.GPUImageHash = "gX"
	q.FP.Fonts = []string{"Wingdings"}
	if got := l.TopK(q, 10); len(got) != 0 {
		t.Fatalf("3 rare diffs should be rejected, got %v", got)
	}
}

func TestRuleAddReplacesLastFingerprint(t *testing.T) {
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63, 0, 3239, 132), tBase))
	l.Add("a", chromeRecord(useragent.V(64, 0, 3282, 140), tBase.Add(time.Hour)))
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
	// Old version no longer exact-matches; new one does.
	got := l.TopK(chromeRecord(useragent.V(64, 0, 3282, 140), tBase.Add(2*time.Hour)), 1)
	if len(got) != 1 || got[0].Score < 1e8 {
		t.Fatalf("new fingerprint should exact match: %v", got)
	}
}

func TestRuleTopKRespectsK(t *testing.T) {
	l := NewRuleLinker()
	for i := 0; i < 20; i++ {
		r := chromeRecord(useragent.V(63), tBase)
		r.FP.TimezoneOffset = i * 15 // small per-instance variation
		l.Add(InstanceID(i), r)
	}
	q := chromeRecord(useragent.V(63), tBase.Add(time.Hour))
	if got := l.TopK(q, 5); len(got) > 5 {
		t.Fatalf("TopK returned %d > 5", len(got))
	}
	if got := l.TopK(q, 0); got != nil {
		t.Fatalf("TopK(0) = %v", got)
	}
}

// trainWorld simulates a world and returns its stream.
func trainWorld(t testing.TB, users int, seed int64) ([]*fingerprint.Record, []int) {
	cfg := population.DefaultConfig(users)
	cfg.Seed = seed
	ds := population.Simulate(cfg)
	return ds.Records, ds.TrueInstance
}

func TestEvaluateRuleBasedOnSimulatedWorld(t *testing.T) {
	records, instances := trainWorld(t, 400, 11)
	res := Evaluate(NewRuleLinker(), records, instances, 10)
	if res.Queries != len(records) {
		t.Fatalf("queries = %d", res.Queries)
	}
	t.Logf("rule-based: P=%.3f R=%.3f F1=%.3f (TP=%d FP=%d FN=%d TN=%d) mean=%v db=%d",
		res.Precision(), res.Recall(), res.F1(), res.TP, res.FP, res.FN, res.TN, res.MeanMatchTime, res.DBSize)
	if res.F1() < 0.60 {
		t.Errorf("rule-based F1 %.3f unexpectedly low", res.F1())
	}
	if res.F1() > 0.995 {
		t.Errorf("rule-based F1 %.3f suspiciously perfect; the paper documents FPs/FNs", res.F1())
	}
	if res.MeanMatchTime <= 0 {
		t.Errorf("MeanMatchTime = %v; the rounded mean must stay non-zero", res.MeanMatchTime)
	}
}

func TestEvaluateLearningBasedOnSimulatedWorld(t *testing.T) {
	trainRecs, trainInst := trainWorld(t, 300, 21)
	f, err := TrainPairModel(trainRecs, trainInst, mlearn.ForestConfig{Seed: 5, NumTrees: 15, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	testRecs, testInst := trainWorld(t, 250, 22)
	res := Evaluate(NewLearnLinker(f), testRecs, testInst, 10)
	t.Logf("learning-based: P=%.3f R=%.3f F1=%.3f (TP=%d FP=%d FN=%d TN=%d) mean=%v",
		res.Precision(), res.Recall(), res.F1(), res.TP, res.FP, res.FN, res.TN, res.MeanMatchTime)
	if res.F1() < 0.5 {
		t.Errorf("learning-based F1 %.3f too low", res.F1())
	}
}

func TestMatchingTimeGrowsWithDB(t *testing.T) {
	// Figure 9's core claim: matching time grows roughly linearly in
	// the database size for non-exact queries. The claim is about the
	// paper's linear scan, so pin the ablation configuration — the
	// blocked/parallel engine exists precisely to break this growth
	// (BenchmarkTopKBlocked / BenchmarkTopKParallel measure that).
	records, instances := trainWorld(t, 1500, 31)
	small := NewRuleLinker()
	small.NoBlocking = true
	small.Workers = 1
	big := NewRuleLinker()
	big.NoBlocking = true
	big.Workers = 1
	n := 0
	for i, rec := range records {
		if n < 500 {
			small.Add(InstanceID(instances[i]), rec)
		}
		big.Add(InstanceID(instances[i]), rec)
		n++
	}
	if big.Len() < 3*small.Len()/2 {
		t.Skip("world too small for a meaningful scaling comparison")
	}
	// Non-exact query: a fresh fingerprint variant.
	q := chromeRecord(useragent.V(65, 0, 3325, 146), tBase)
	q.FP.CanvasHash = "unseen"
	queries := make([]*fingerprint.Record, 50)
	for i := range queries {
		cp := *q
		fp := q.FP.Clone()
		fp.TimezoneOffset = i
		cp.FP = fp
		queries[i] = &cp
	}
	tSmall := TimeMatching(small, queries, 10)
	tBig := TimeMatching(big, queries, 10)
	t.Logf("db=%d: %v/query; db=%d: %v/query", small.Len(), tSmall, big.Len(), tBig)
	if tBig <= tSmall {
		t.Errorf("matching time did not grow with DB size: %v vs %v", tSmall, tBig)
	}
}

func TestExactIndexAblation(t *testing.T) {
	// Advice 6: caching (the exact-match index) speeds up matching.
	// Measured against the paper's linear-scan configuration — with the
	// blocking index on, exact queries already only face their own
	// bucket and the margin disappears into noise.
	records, instances := trainWorld(t, 800, 41)
	indexed := NewRuleLinker()
	indexed.NoBlocking = true
	indexed.Workers = 1
	scan := NewRuleLinker()
	scan.NoExactIndex = true
	scan.NoBlocking = true
	scan.Workers = 1
	for i, rec := range records {
		indexed.Add(InstanceID(instances[i]), rec)
		scan.Add(InstanceID(instances[i]), rec)
	}
	// Exact queries: re-present known fingerprints.
	queries := records[:100]
	tIdx := TimeMatching(indexed, queries, 10)
	tScan := TimeMatching(scan, queries, 10)
	t.Logf("indexed=%v/query scan=%v/query", tIdx, tScan)
	if tIdx >= tScan {
		t.Errorf("exact index brought no speedup: %v vs %v", tIdx, tScan)
	}
}

func TestPairVectorShape(t *testing.T) {
	a := chromeRecord(useragent.V(63), tBase)
	b := chromeRecord(useragent.V(64), tBase.Add(time.Hour))
	v := PairVector(a, b)
	if len(v) != NumPairFeatures {
		t.Fatalf("vector length %d, want %d", len(v), NumPairFeatures)
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Errorf("feature %d = %v outside [0,1]", i, x)
		}
	}
	// Identical pair should look maximally similar on equality features.
	same := PairVector(a, a)
	if same[3] != 1 || same[5] != 1 {
		t.Errorf("self-pair vector = %v", same)
	}
}

func TestTrainPairModelErrors(t *testing.T) {
	if _, err := TrainPairModel(nil, []int{1}, mlearn.ForestConfig{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	r := chromeRecord(useragent.V(63), tBase)
	if _, err := TrainPairModel([]*fingerprint.Record{r}, []int{0}, mlearn.ForestConfig{}); err == nil {
		t.Fatal("single-visit stream should produce no pairs and error")
	}
}

func BenchmarkRuleMatch10K(b *testing.B) {
	records, instances := trainWorld(b, 3000, 51)
	l := NewRuleLinker()
	for i, rec := range records {
		l.Add(InstanceID(instances[i]), rec)
	}
	q := chromeRecord(useragent.V(65, 0, 3325, 146), tBase)
	q.FP.CanvasHash = "unseen"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.TopK(q, 10)
	}
}
