package fpstalker

import (
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

// RuleLinker is the rule-based FP-Stalker variant: a cascade of
// hand-crafted constraints filters candidates, then the surviving ones
// are ranked by feature similarity.
//
// The rules follow the original paper:
//
//  1. exact match wins immediately (optionally served from a hash
//     index — the paper's Advice 6 caching suggestion; disable with
//     NoExactIndex for the ablation);
//  2. the candidate must share browser family, OS family and platform;
//  3. the browser version must not move backwards;
//  4. a small set of user-controlled "must equal" features (cookie and
//     localStorage support) must match — which is exactly why storage
//     toggles produce the paper's Figure 11(b) false negative;
//  5. at most 2 of the rarely-changing features (canvas, fonts, GPU
//     renderer, GPU image) and at most MaxDiffs features overall may
//     differ.
//
// Hardware features like CPU cores are deliberately NOT constrained —
// reproducing the Figure 11(c) false positive the paper reports.
type RuleLinker struct {
	// MaxDiffs is the overall differing-feature budget (default 5).
	MaxDiffs int
	// NoExactIndex disables the exact-match hash index, forcing the
	// full linear scan even for identical fingerprints (ablation).
	NoExactIndex bool

	entries []*entry
	byID    map[string]int   // instance id → index in entries
	byHash  map[uint64][]int // fingerprint hash → entry indexes
}

// NewRuleLinker returns an empty rule-based linker.
func NewRuleLinker() *RuleLinker {
	return &RuleLinker{
		MaxDiffs: 5,
		byID:     make(map[string]int),
		byHash:   make(map[uint64][]int),
	}
}

// Len implements Linker.
func (l *RuleLinker) Len() int { return len(l.entries) }

// Add implements Linker: rec becomes the last known fingerprint of id.
func (l *RuleLinker) Add(id string, rec *fingerprint.Record) {
	e := newEntry(id, rec)
	if i, ok := l.byID[id]; ok {
		oldHash := l.entries[i].rec.FP.Hash(false)
		l.entries[i] = e
		l.removeHash(oldHash, i)
		l.addHash(rec.FP.Hash(false), i)
		return
	}
	l.entries = append(l.entries, e)
	i := len(l.entries) - 1
	l.byID[id] = i
	l.addHash(rec.FP.Hash(false), i)
}

func (l *RuleLinker) addHash(h uint64, i int) {
	l.byHash[h] = append(l.byHash[h], i)
}

func (l *RuleLinker) removeHash(h uint64, i int) {
	s := l.byHash[h]
	for k, v := range s {
		if v == i {
			s[k] = s[len(s)-1]
			l.byHash[h] = s[:len(s)-1]
			break
		}
	}
	if len(l.byHash[h]) == 0 {
		delete(l.byHash, h)
	}
}

// TopK implements Linker.
func (l *RuleLinker) TopK(rec *fingerprint.Record, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	// Rule 1: exact match via the index.
	if !l.NoExactIndex {
		h := rec.FP.Hash(false)
		if idxs := l.byHash[h]; len(idxs) > 0 {
			cands := make([]Candidate, 0, len(idxs))
			for _, i := range idxs {
				if l.entries[i].rec.FP.Equal(rec.FP) {
					cands = append(cands, Candidate{ID: l.entries[i].id, Score: 1e9})
				}
			}
			if len(cands) > 0 {
				sortCandidates(cands)
				if len(cands) > k {
					cands = cands[:k]
				}
				return cands
			}
		}
	}

	qUA, qErr := useragent.Parse(rec.FP.UserAgent)
	var cands []Candidate
	for _, e := range l.entries {
		score, ok := l.score(rec, qUA, qErr == nil, e)
		if !ok {
			continue
		}
		cands = append(cands, Candidate{ID: e.id, Score: score})
	}
	sortCandidates(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// score applies rules 2–5 and returns the similarity score.
func (l *RuleLinker) score(rec *fingerprint.Record, qUA useragent.UA, qOK bool, e *entry) (float64, bool) {
	fp, cand := rec.FP, e.rec.FP

	// Rule 2: same browser family / OS family / platform.
	if qOK && e.ok {
		if qUA.Browser != e.ua.Browser || qUA.OS != e.ua.OS || qUA.Mobile != e.ua.Mobile {
			return 0, false
		}
		// Rule 3: version must not decrease.
		if qUA.BrowserVersion.Compare(e.ua.BrowserVersion) < 0 {
			return 0, false
		}
		if qUA.OSVersion.Compare(e.ua.OSVersion) < 0 {
			return 0, false
		}
	} else if fp.UserAgent != cand.UserAgent {
		// Unparseable agents must match verbatim.
		return 0, false
	}

	// Rule 4: user-controlled storage toggles must be equal.
	if fp.CookieEnabled != cand.CookieEnabled || fp.LocalStorage != cand.LocalStorage {
		return 0, false
	}

	// Rule 5: difference budgets.
	total, rare := countFeatureDiffs(fp, cand)
	if rare > 2 || total > l.MaxDiffs {
		return 0, false
	}

	// Rank by number of identical features; nudge with recency so ties
	// break toward fresher entries.
	nonIP := 0
	for _, d := range fingerprint.Schema {
		if !d.IsIP {
			nonIP++
		}
	}
	score := float64(nonIP - total)
	if !e.rec.Time.IsZero() && !rec.Time.IsZero() && rec.Time.After(e.rec.Time) {
		age := rec.Time.Sub(e.rec.Time).Hours()
		score += 1.0 / (1.0 + age/24.0) // ≤ 1 point for recency
	}
	return score, true
}
