package fpstalker

import (
	"context"
	"fmt"
	"sort"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/hashutil"
)

// RuleLinker is the rule-based FP-Stalker variant: a cascade of
// hand-crafted constraints filters candidates, then the surviving ones
// are ranked by feature similarity.
//
// The rules follow the original paper:
//
//  1. exact match wins immediately (optionally served from a hash
//     index — the paper's Advice 6 caching suggestion; disable with
//     NoExactIndex for the ablation);
//  2. the candidate must share browser family, OS family and platform;
//  3. the browser version must not move backwards;
//  4. a small set of user-controlled "must equal" features (cookie and
//     localStorage support) must match — which is exactly why storage
//     toggles produce the paper's Figure 11(b) false negative;
//  5. at most 2 of the rarely-changing features (canvas, fonts, GPU
//     renderer, GPU image) and at most MaxDiffs features overall may
//     differ.
//
// Hardware features like CPU cores are deliberately NOT constrained —
// reproducing the Figure 11(c) false positive the paper reports.
//
// Candidate generation runs through the engine's blocking index (rule 2
// is exactly the bucket key) and the surviving set is scored on a
// worker pool; see engine.go. Both are ablatable, and Add/TopK are safe
// for concurrent callers.
type RuleLinker struct {
	// MaxDiffs is the overall differing-feature budget (default 5).
	MaxDiffs int
	// NoExactIndex disables the exact-match hash index, forcing the
	// full linear scan even for identical fingerprints (ablation).
	NoExactIndex bool
	// NoBlocking disables the candidate-blocking index so every query
	// scans the whole table — the paper's Figure 9 configuration.
	NoBlocking bool
	// Workers caps the scoring pool: 0 means GOMAXPROCS, 1 is serial.
	Workers int

	eng    *engine
	byHash map[uint64][]int // fingerprint hash → entry indexes
}

// NewRuleLinker returns an empty rule-based linker.
func NewRuleLinker() *RuleLinker {
	return &RuleLinker{
		MaxDiffs: 5,
		eng:      newEngine(),
		byHash:   make(map[uint64][]int),
	}
}

// Len implements Linker.
func (l *RuleLinker) Len() int { return l.eng.size() }

// Add implements Linker: rec becomes the last known fingerprint of id.
func (l *RuleLinker) Add(id string, rec *fingerprint.Record) {
	e := newEntry(id, rec)
	l.eng.mu.Lock()
	defer l.eng.mu.Unlock()
	i, oldHash, replaced := l.eng.add(id, e)
	if replaced {
		removeFromBucket(l.byHash, oldHash, i)
	}
	l.byHash[e.fpHash] = append(l.byHash[e.fpHash], i)
}

// Remove implements DynamicLinker: it deletes id's entry from the
// table, the blocking index and the exact-match hash index. It reports
// whether the instance was known. Safe for concurrent use with Add and
// TopK — the eviction path of a long-running linker.
func (l *RuleLinker) Remove(id string) bool {
	l.eng.mu.Lock()
	defer l.eng.mu.Unlock()
	// The hash index must be fixed in two steps: drop the removed
	// row's old slot, then re-point the swap-moved row (which held the
	// table's last slot) to its new position.
	rm, known := l.eng.remove(id)
	if !known {
		return false
	}
	removeFromBucket(l.byHash, rm.fpHash, rm.index)
	if rm.movedFrom >= 0 {
		removeFromBucket(l.byHash, rm.movedFPHash, rm.movedFrom)
		l.byHash[rm.movedFPHash] = append(l.byHash[rm.movedFPHash], rm.movedTo)
	}
	return true
}

// IndexDigest implements DynamicLinker: a canonical digest over the
// entry table, the blocking index and the exact-match hash index.
func (l *RuleLinker) IndexDigest() string {
	l.eng.mu.RLock()
	defer l.eng.mu.RUnlock()
	var b []byte
	b = append(b, l.eng.indexDigest()...)
	lines := make([]string, 0, len(l.byHash))
	for h, bucket := range l.byHash {
		lines = append(lines, fmt.Sprintf("hash %016x%s", h, bucketIDs(l.eng, bucket)))
	}
	sort.Strings(lines)
	for _, line := range lines {
		b = append(b, '\n')
		b = append(b, line...)
	}
	return hashutil.SHA1HexBytes(b)
}

// TopK implements Linker.
func (l *RuleLinker) TopK(rec *fingerprint.Record, k int) []Candidate {
	cands, _ := l.TopKCtx(nil, rec, k) // nil ctx: never canceled
	return cands
}

// TopKCtx is TopK with cooperative cancellation: a ctx that expires
// mid-scan stops the scoring workers within cancelSlice candidates and
// returns ctx's error — the deadline-propagation contract fplinkd
// relies on so a timed-out query stops consuming CPU.
func (l *RuleLinker) TopKCtx(ctx context.Context, rec *fingerprint.Record, k int) ([]Candidate, error) {
	if k <= 0 {
		return nil, nil
	}
	// One query-side entry per TopK: the UA parse, the ~30 feature keys
	// and the fingerprint hashes are computed once here instead of once
	// per candidate.
	q := newEntry("", rec)
	l.eng.mu.RLock()
	defer l.eng.mu.RUnlock()
	// Rule 1: exact match via the index (hash bucket, then the
	// fingerprint.Equal-equivalent check over the stored hashes).
	if !l.NoExactIndex {
		if idxs := l.byHash[q.fpHash]; len(idxs) > 0 {
			cands := make([]Candidate, 0, len(idxs))
			for _, i := range idxs {
				if l.eng.exactMatch(i, q) {
					cands = append(cands, Candidate{ID: l.eng.tab.ids[i], Score: 1e9})
				}
			}
			if len(cands) > 0 {
				return topK(cands, k), nil
			}
		}
	}

	cs := l.eng.ruleCandidates(q, l.NoBlocking)
	score := func(e *entry) (float64, bool) { return l.score(q, e) }
	if !cs.all && q.ok {
		// Every entry in the query's bucket shares its browser family,
		// OS family, form factor and storage toggles by construction —
		// rules 2 and 4 are already satisfied, so the blocked path only
		// evaluates the remaining filters. score would accept exactly
		// the same set.
		score = func(e *entry) (float64, bool) { return l.scoreBlocked(q, e) }
	}
	return l.eng.scoreTopK(ctx, cs, l.Workers, k, score)
}

// score applies rules 2–5 and returns the similarity score. It is the
// complete filter: blocking only skips entries score would reject, so
// blocked and full scans rank identically.
func (l *RuleLinker) score(q, e *entry) (float64, bool) {
	// Rule 2: same browser family / OS family / platform.
	if q.ok && e.ok {
		if q.ua.Browser != e.ua.Browser || q.ua.OS != e.ua.OS || q.ua.Mobile != e.ua.Mobile {
			return 0, false
		}
		// Rule 3: version must not decrease.
		if q.ua.BrowserVersion.Compare(e.ua.BrowserVersion) < 0 {
			return 0, false
		}
		if q.ua.OSVersion.Compare(e.ua.OSVersion) < 0 {
			return 0, false
		}
	} else if q.uaStr != e.uaStr {
		// Unparseable agents must match verbatim.
		return 0, false
	}

	// Rule 4: user-controlled storage toggles must be equal.
	if q.cookie != e.cookie || q.localStorage != e.localStorage {
		return 0, false
	}

	return l.scoreTail(q, e)
}

// scoreBlocked is score for candidates served from the query's
// blocking bucket: rules 2 and 4 are the bucket key, so only the
// version ordering (rule 3) and the difference budgets (rule 5) remain
// to check.
func (l *RuleLinker) scoreBlocked(q, e *entry) (float64, bool) {
	if q.ua.BrowserVersion.Compare(e.ua.BrowserVersion) < 0 {
		return 0, false
	}
	if q.ua.OSVersion.Compare(e.ua.OSVersion) < 0 {
		return 0, false
	}
	return l.scoreTail(q, e)
}

// scoreTail applies rule 5 and ranks the surviving candidate.
func (l *RuleLinker) scoreTail(q, e *entry) (float64, bool) {
	// Rule 5: difference budgets, over the precomputed keys.
	total, ok := countKeyDiffsBudget(q.keys, e.keys, l.MaxDiffs, 2)
	if !ok {
		return 0, false
	}

	// Rank by number of identical features; nudge with recency so ties
	// break toward fresher entries.
	score := float64(numNonIP - total)
	if q.hasTime && e.hasTime && q.hrs > e.hrs {
		age := q.hrs - e.hrs
		score += 1.0 / (1.0 + age/24.0) // ≤ 1 point for recency
	}
	return score, true
}
