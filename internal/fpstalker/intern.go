package fpstalker

import (
	"slices"

	"fpdyn/internal/hashutil"
	"fpdyn/internal/useragent"
)

// Refcounted intern pools for the heavy per-entry payloads. Across a
// population the expensive parts of an entry repeat massively: a few
// thousand distinct user-agent strings cover millions of browsers, and
// font/plugin/language stacks are long-tailed but highly repetitive.
// Storing each distinct payload once — and handing entries small
// integer handles — is what drops the store from ~1.5 KB to a few
// hundred bytes per entry, and shrinks the GC's pointer workload from
// O(entries) to O(distinct payloads).
//
// Both pools are refcounted: add takes a reference, remove/replace
// drops one, and a payload whose count hits zero frees its slot for
// reuse. The engine's mutex serializes every intern/release, so the
// pools need no locking of their own.

// uaSlot is one interned user-agent string plus its parse, shared by
// every entry presenting that agent. Slots are allocated individually
// so &slot.ua stays valid across pool growth — entry views alias it
// instead of copying the parsed UA per candidate.
type uaSlot struct {
	str  string
	ua   useragent.UA
	ok   bool // str parsed
	refs int32
}

// uaPool interns user-agent strings. The parse happens once per
// distinct agent at intern time (not once per entry, and never per
// candidate).
type uaPool struct {
	byStr map[string]uint32
	slots []*uaSlot // index 0 reserved: 0 is the nil handle
	free  []uint32
	hits, misses uint64
}

func (p *uaPool) init() {
	p.byStr = make(map[string]uint32)
	p.slots = []*uaSlot{nil}
}

// intern returns a handle for s, taking one reference.
func (p *uaPool) intern(s string) uint32 {
	if id, ok := p.byStr[s]; ok {
		p.slots[id].refs++
		p.hits++
		return id
	}
	p.misses++
	slot := &uaSlot{str: s, refs: 1}
	if ua, err := useragent.CachedParse(s); err == nil {
		slot.ua, slot.ok = ua, true
	}
	var id uint32
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
		p.slots[id] = slot
	} else {
		p.slots = append(p.slots, slot)
		id = uint32(len(p.slots) - 1)
	}
	p.byStr[s] = id
	return id
}

// release drops one reference; the last reference frees the slot.
func (p *uaPool) release(id uint32) {
	slot := p.slots[id]
	slot.refs--
	if slot.refs > 0 {
		return
	}
	delete(p.byStr, slot.str)
	p.slots[id] = nil
	p.free = append(p.free, id)
}

// live is the number of distinct interned strings.
func (p *uaPool) live() int { return len(p.byStr) }

// vecSlot is one interned []uint64 payload (a feature-key vector or a
// sorted set-hash slice) keyed by content hash.
type vecSlot struct {
	data []uint64
	hash uint64
	refs int32
}

// vecIntern interns []uint64 payloads by content. Lookup hashes the
// slice and verifies colliding candidates element-by-element, so a
// hash collision costs one extra compare, never a wrong share. Handle
// 0 means the empty slice (rule entries carry no set hashes).
type vecIntern struct {
	byHash map[uint64][]uint32
	slots  []vecSlot // index 0 reserved: the nil/empty handle
	free   []uint32
	bytes  int64 // payload bytes currently held
	hits, misses uint64
}

func (p *vecIntern) init() {
	p.byHash = make(map[uint64][]uint32)
	p.slots = make([]vecSlot, 1)
}

// intern returns a handle for v, taking one reference. On a miss the
// pool takes ownership of v's backing array.
func (p *vecIntern) intern(v []uint64) uint32 {
	if len(v) == 0 {
		return 0
	}
	h := hashutil.HashUint64s(v)
	for _, id := range p.byHash[h] {
		if slices.Equal(p.slots[id].data, v) {
			p.slots[id].refs++
			p.hits++
			return id
		}
	}
	p.misses++
	var id uint32
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
		p.slots[id] = vecSlot{data: v, hash: h, refs: 1}
	} else {
		p.slots = append(p.slots, vecSlot{data: v, hash: h, refs: 1})
		id = uint32(len(p.slots) - 1)
	}
	p.byHash[h] = append(p.byHash[h], id)
	p.bytes += int64(8 * len(v))
	return id
}

// release drops one reference; the last reference frees the slot and
// unlinks it from the hash index.
func (p *vecIntern) release(id uint32) {
	if id == 0 {
		return
	}
	s := &p.slots[id]
	s.refs--
	if s.refs > 0 {
		return
	}
	bucket := p.byHash[s.hash]
	for j, v := range bucket {
		if v == id {
			bucket[j] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(p.byHash, s.hash)
	} else {
		p.byHash[s.hash] = bucket
	}
	p.bytes -= int64(8 * len(s.data))
	*s = vecSlot{}
	p.free = append(p.free, id)
}

// data resolves a handle; data(0) is nil.
func (p *vecIntern) data(id uint32) []uint64 { return p.slots[id].data }

// live is the number of distinct interned payloads.
func (p *vecIntern) live() int { return len(p.slots) - 1 - len(p.free) }

// keyReg assigns small stable integer handles to blocking-bucket keys
// (blockKey, famKey), so the SoA rows store a uint32 instead of two
// strings. Handles are never recycled — the key space is bounded by
// (browser family × OS family × three booleans), a few hundred values
// against millions of entries — which keeps candidate lookup a plain
// map read with no refcount bookkeeping. Handle 0 means "no such key".
type keyReg[K comparable] struct {
	byKey map[K]uint32
	keys  []K // index 0 reserved
}

func (r *keyReg[K]) init() {
	r.byKey = make(map[K]uint32)
	r.keys = make([]K, 1)
}

// id interns k, allocating a handle on first sight.
func (r *keyReg[K]) id(k K) uint32 {
	if id, ok := r.byKey[k]; ok {
		return id
	}
	r.keys = append(r.keys, k)
	id := uint32(len(r.keys) - 1)
	r.byKey[k] = id
	return id
}

// lookup resolves k without interning (the read-side query path must
// not mutate the registry under an RLock); 0 means unknown.
func (r *keyReg[K]) lookup(k K) uint32 { return r.byKey[k] }
