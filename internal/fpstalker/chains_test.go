package fpstalker

import (
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/population"
	"fpdyn/internal/useragent"
)

func TestChainEvaluatePerfectLinker(t *testing.T) {
	// Replay a single instance that never changes: one chain, full
	// purity, tracking duration = full window.
	r1 := chromeRecord(useragent.V(63, 0, 3239, 132), tBase)
	r2 := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(24*time.Hour))
	r3 := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(48*time.Hour))
	res := ChainEvaluate(NewRuleLinker(), []*fingerprint.Record{r1, r2, r3}, []int{1, 1, 1})
	if res.Chains != 1 || res.TrueInstances != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.AvgChainPurity != 1 {
		t.Fatalf("purity = %v", res.AvgChainPurity)
	}
	if res.AvgTrackingDuration != 48*time.Hour {
		t.Fatalf("duration = %v", res.AvgTrackingDuration)
	}
}

func TestChainEvaluateSplitOnStorageToggle(t *testing.T) {
	// The Figure 11(b) FN splits a chain: tracking duration collapses.
	r1 := chromeRecord(useragent.V(63, 0, 3239, 132), tBase)
	r2 := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(24*time.Hour))
	r2.FP.CookieEnabled, r2.FP.LocalStorage = false, false
	res := ChainEvaluate(NewRuleLinker(), []*fingerprint.Record{r1, r2}, []int{1, 1})
	if res.Chains != 2 {
		t.Fatalf("chains = %d, want 2 (split)", res.Chains)
	}
	if res.AvgTrackingDuration != 0 {
		t.Fatalf("duration = %v, want 0 after split", res.AvgTrackingDuration)
	}
}

func TestChainEvaluateOnWorld(t *testing.T) {
	records, instances := trainWorld(t, 600, 61)
	res := ChainEvaluate(NewRuleLinker(), records, instances)
	t.Logf("chains=%d true=%d avg-duration=%v purity=%.3f split=%.2f",
		res.Chains, res.TrueInstances, res.AvgTrackingDuration, res.AvgChainPurity, res.SplitRatio)
	if res.TrueInstances == 0 || res.Chains == 0 {
		t.Fatal("no chains")
	}
	if res.AvgChainPurity < 0.8 {
		t.Errorf("purity %.3f suspiciously low", res.AvgChainPurity)
	}
	if res.AvgTrackingDuration <= 0 {
		t.Error("no tracking duration at all")
	}
}

func TestChainEvaluateEmpty(t *testing.T) {
	res := ChainEvaluate(NewRuleLinker(), nil, nil)
	if res.Chains != 0 || res.TrueInstances != 0 {
		t.Fatalf("empty res = %+v", res)
	}
}

func BenchmarkChainEvaluate(b *testing.B) {
	cfg := population.DefaultConfig(500)
	ds := population.Simulate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChainEvaluate(NewRuleLinker(), ds.Records, ds.TrueInstance)
	}
}
