package fpstalker

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/useragent"
)

// engineWorld simulates a record stream and splices in a few
// unparseable-UA records so the equivalence tests cover the raw-UA
// bucket and the learning variant's unparsed-entry path.
func engineWorld(t testing.TB, users int, seed int64) ([]*fingerprint.Record, []int) {
	records, instances := trainWorld(t, users, seed)
	maxInst := 0
	for _, inst := range instances {
		if inst > maxInst {
			maxInst = inst
		}
	}
	for j := 0; j < 3; j++ {
		rec := chromeRecord(useragent.V(60+j), tBase.Add(time.Duration(j)*time.Hour))
		rec.FP.UserAgent = fmt.Sprintf("TotallyUnknownAgent/%d.0", j)
		records = append(records, rec)
		instances = append(instances, maxInst+1+j)
	}
	return records, instances
}

// evolvedFrom derives a plausible non-exact query from a stored record.
func evolvedFrom(rec *fingerprint.Record, i int) *fingerprint.Record {
	cp := *rec
	fp := rec.FP.Clone()
	fp.CanvasHash = fmt.Sprintf("evolved-%d", i)
	fp.TimezoneOffset += 60
	cp.FP = fp
	cp.Time = rec.Time.Add(24 * time.Hour)
	return &cp
}

// goldenQueries mixes exact re-presentations, evolved fingerprints and
// the unparseable-UA records.
func goldenQueries(records []*fingerprint.Record) []*fingerprint.Record {
	var qs []*fingerprint.Record
	for i := 0; i < len(records); i += 31 {
		qs = append(qs, records[i], evolvedFrom(records[i], i))
	}
	return qs
}

// TestGoldenEquivalenceRule: the blocked, parallel rule-based engine
// must return byte-identical rankings to the paper's serial linear
// scan for every query.
func TestGoldenEquivalenceRule(t *testing.T) {
	records, instances := engineWorld(t, 500, 61)
	linear := NewRuleLinker()
	linear.NoBlocking = true
	linear.Workers = 1
	engine := NewRuleLinker()
	for i, rec := range records {
		linear.Add(InstanceID(instances[i]), rec)
		engine.Add(InstanceID(instances[i]), rec)
	}
	for qi, q := range goldenQueries(records) {
		want := linear.TopK(q, 10)
		got := engine.TopK(q, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d: engine ranking diverged\n scan:   %v\n engine: %v", qi, want, got)
		}
	}
}

// TestGoldenEquivalenceLearning: same contract for the learning-based
// variant, which blocks on a coarser key and must still include
// unparsed entries in every candidate set.
func TestGoldenEquivalenceLearning(t *testing.T) {
	records, instances := engineWorld(t, 350, 62)
	forest, err := TrainPairModel(records, instances, mlearn.ForestConfig{Seed: 7, NumTrees: 8, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	linear := NewLearnLinker(forest)
	linear.NoBlocking = true
	linear.Workers = 1
	engine := NewLearnLinker(forest)
	for i, rec := range records {
		linear.Add(InstanceID(instances[i]), rec)
		engine.Add(InstanceID(instances[i]), rec)
	}
	for qi, q := range goldenQueries(records) {
		want := linear.TopK(q, 10)
		got := engine.TopK(q, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d: engine ranking diverged\n scan:   %v\n engine: %v", qi, want, got)
		}
	}
}

// TestBlockingSurvivesReplacement: replacing an instance's fingerprint
// with one in a different bucket (browser update across OS, UA turning
// unparseable) must move it between buckets, not leave a stale index.
func TestBlockingSurvivesReplacement(t *testing.T) {
	l := NewRuleLinker()
	rec := chromeRecord(useragent.V(63, 0, 3239, 132), tBase)
	l.Add("a", rec)

	// Replace with an unparseable UA: the entry must leave the Chrome
	// bucket and become reachable only by verbatim UA match.
	garbled := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(time.Hour))
	garbled.FP.UserAgent = "GarbledAgent/1.0"
	l.Add("a", garbled)

	q := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(2*time.Hour))
	q.FP.CanvasHash = "different" // defeat the exact index
	if got := l.TopK(q, 10); len(got) != 0 {
		t.Fatalf("stale bucket: chrome query linked to garbled entry: %v", got)
	}
	q2 := chromeRecord(useragent.V(63, 0, 3239, 132), tBase.Add(2*time.Hour))
	q2.FP.UserAgent = "GarbledAgent/1.0"
	q2.FP.CanvasHash = "different"
	got := l.TopK(q2, 10)
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("verbatim unparseable match failed: %v", got)
	}

	// Replace back with a parsed UA: the raw bucket must be vacated.
	l.Add("a", chromeRecord(useragent.V(64, 0, 3282, 140), tBase.Add(3*time.Hour)))
	if got := l.TopK(q2, 10); len(got) != 0 {
		t.Fatalf("stale raw bucket: garbled query still links: %v", got)
	}
}

// TestParallelWorkersMatchSerial pins the worker pool itself (forcing
// the pool past the small-candidate serial cutoff) against the serial
// path on an identical table.
func TestParallelWorkersMatchSerial(t *testing.T) {
	records, instances := engineWorld(t, 500, 63)
	serial := NewRuleLinker()
	serial.NoBlocking = true
	serial.Workers = 1
	parallel := NewRuleLinker()
	parallel.NoBlocking = true // whole table as one big candidate set
	parallel.Workers = 8
	for i, rec := range records {
		serial.Add(InstanceID(instances[i]), rec)
		parallel.Add(InstanceID(instances[i]), rec)
	}
	if serial.Len() < minParallel {
		t.Fatalf("world too small (%d) to exercise the parallel path", serial.Len())
	}
	for qi, q := range goldenQueries(records) {
		want := serial.TopK(q, 10)
		got := parallel.TopK(q, 10)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %d: parallel ranking diverged\n serial:   %v\n parallel: %v", qi, want, got)
		}
	}
}

// TestConcurrentAddTopK hammers both linkers with interleaved writers
// and readers; run under -race it is the engine's thread-safety proof.
func TestConcurrentAddTopK(t *testing.T) {
	records, instances := trainWorld(t, 200, 71)
	forest, err := TrainPairModel(records[:len(records)/2], instances[:len(records)/2],
		mlearn.ForestConfig{Seed: 3, NumTrees: 5, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	linkers := []struct {
		name string
		l    Linker
	}{
		{"rule", NewRuleLinker()},
		{"learning", NewLearnLinker(forest)},
	}
	for _, tc := range linkers {
		t.Run(tc.name, func(t *testing.T) {
			const writers, readers = 4, 4
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(records); i += writers {
						tc.l.Add(InstanceID(instances[i]), records[i])
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := r; i < len(records); i += 3 * readers {
						tc.l.TopK(evolvedFrom(records[i], i), 10)
						tc.l.Len()
					}
				}(r)
			}
			wg.Wait()
			if tc.l.Len() == 0 {
				t.Fatal("no entries after concurrent adds")
			}
		})
	}
}

// TestTimeMatchingNonZero guards the rounded-mean protocol: even a
// fast blocked engine must report a non-zero per-query latency.
func TestTimeMatchingNonZero(t *testing.T) {
	l := NewRuleLinker()
	l.Add("a", chromeRecord(useragent.V(63), tBase))
	q := chromeRecord(useragent.V(63), tBase.Add(time.Hour))
	if d := TimeMatching(l, []*fingerprint.Record{q}, 10); d <= 0 {
		t.Fatalf("TimeMatching = %v, want > 0", d)
	}
	if d := TimeMatching(l, nil, 10); d != 0 {
		t.Fatalf("TimeMatching(no queries) = %v, want 0", d)
	}
}
