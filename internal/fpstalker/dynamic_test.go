package fpstalker

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
)

// dynamicLinkers builds one instance of each variant for a table-driven
// DynamicLinker test.
func dynamicLinkers(t *testing.T, records []*fingerprint.Record, instances []int) []struct {
	name string
	mk   func() DynamicLinker
} {
	t.Helper()
	forest, err := TrainPairModel(records, instances,
		mlearn.ForestConfig{Seed: 3, NumTrees: 5, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		mk   func() DynamicLinker
	}{
		{"rule", func() DynamicLinker { return NewRuleLinker() }},
		{"learning", func() DynamicLinker { return NewLearnLinker(forest) }},
	}
}

// TestRemoveDigestEquivalence: an add/remove sequence must leave the
// linker indistinguishable — digest and rankings — from a fresh build
// over the surviving set. This is the crash-recovery contract linkd's
// compaction relies on.
func TestRemoveDigestEquivalence(t *testing.T) {
	records, instances := engineWorld(t, 300, 81)
	for _, tc := range dynamicLinkers(t, records, instances) {
		t.Run(tc.name, func(t *testing.T) {
			churned := tc.mk()
			for i, rec := range records {
				churned.Add(InstanceID(instances[i]), rec)
			}
			// Evict every third instance (including swap-moved slots and
			// entries in every bucket flavour).
			removed := make(map[string]bool)
			for i := 0; i < len(records); i += 3 {
				id := InstanceID(instances[i])
				if removed[id] {
					continue
				}
				if !churned.Remove(id) {
					t.Fatalf("Remove(%q) = false for a known instance", id)
				}
				removed[id] = true
			}
			if churned.Remove("no-such-instance") {
				t.Fatal("Remove of an unknown id reported true")
			}

			fresh := tc.mk()
			for i, rec := range records {
				if id := InstanceID(instances[i]); !removed[id] {
					fresh.Add(id, rec)
				}
			}
			if churned.Len() != fresh.Len() {
				t.Fatalf("Len after churn = %d, fresh = %d", churned.Len(), fresh.Len())
			}
			if cd, fd := churned.IndexDigest(), fresh.IndexDigest(); cd != fd {
				t.Fatalf("digest diverged after remove churn: %s vs fresh %s", cd, fd)
			}
			for qi, q := range goldenQueries(records) {
				want := fresh.TopK(q, 10)
				got := churned.TopK(q, 10)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("query %d: churned ranking diverged\n fresh:   %v\n churned: %v", qi, want, got)
				}
			}
		})
	}
}

// TestTopKCtxMatchesTopK: a live (non-canceled) context must not
// change rankings relative to the nil-ctx fast path.
func TestTopKCtxMatchesTopK(t *testing.T) {
	records, instances := engineWorld(t, 300, 82)
	for _, tc := range dynamicLinkers(t, records, instances) {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk()
			for i, rec := range records {
				l.Add(InstanceID(instances[i]), rec)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for qi, q := range goldenQueries(records) {
				want := l.TopK(q, 10)
				got, err := l.TopKCtx(ctx, q, 10)
				if err != nil {
					t.Fatalf("query %d: TopKCtx error: %v", qi, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("query %d: ctx ranking diverged\n nil ctx: %v\n ctx:     %v", qi, want, got)
				}
				// context.Background has no Done channel: exercises the
				// non-cancelable fast path too.
				got2, err := l.TopKCtx(context.Background(), q, 10)
				if err != nil || !reflect.DeepEqual(want, got2) {
					t.Fatalf("query %d: background-ctx path diverged (%v): %v", qi, err, got2)
				}
			}
		})
	}
}

// TestTopKCtxCanceled: an already-expired context must abort the scan
// and surface the context error instead of burning through the table.
func TestTopKCtxCanceled(t *testing.T) {
	records, instances := engineWorld(t, 300, 83)
	for _, tc := range dynamicLinkers(t, records, instances) {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk()
			for i, rec := range records {
				l.Add(InstanceID(instances[i]), rec)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			for qi, q := range goldenQueries(records) {
				cands, err := l.TopKCtx(ctx, q, 10)
				// The exact-match index can answer before any scan runs;
				// everything else must report cancellation.
				if err == nil && len(cands) > 0 && cands[0].Score >= 1e9 {
					continue
				}
				if err != context.Canceled {
					t.Fatalf("query %d: err = %v (cands %v), want context.Canceled", qi, err, cands)
				}
				if cands != nil {
					t.Fatalf("query %d: canceled query still returned candidates: %v", qi, cands)
				}
			}
		})
	}
}

// TestConcurrentAddRemoveTopK extends the Add/TopK interleave proof
// with concurrent eviction — the workload linkd's window evictor runs
// against live queries. Under -race this is the thread-safety proof
// for Remove and the swap-delete index repair.
func TestConcurrentAddRemoveTopK(t *testing.T) {
	records, instances := trainWorld(t, 200, 84)
	for _, tc := range dynamicLinkers(t, records[:len(records)/2], instances[:len(records)/2]) {
		t.Run(tc.name, func(t *testing.T) {
			l := tc.mk()
			// Preload half so removers have something to chew on from the
			// first tick.
			half := len(records) / 2
			for i := 0; i < half; i++ {
				l.Add(InstanceID(instances[i]), records[i])
			}
			const writers, removers, readers = 3, 2, 3
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := half + w; i < len(records); i += writers {
						l.Add(InstanceID(instances[i]), records[i])
					}
				}(w)
			}
			for r := 0; r < removers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := r; i < len(records); i += 2 * removers {
						l.Remove(InstanceID(instances[i]))
					}
				}(r)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := r; i < len(records); i += 3 * readers {
						if _, err := l.TopKCtx(ctx, evolvedFrom(records[i], i), 10); err != nil {
							t.Errorf("TopKCtx: %v", err)
							return
						}
						l.Len()
					}
					l.IndexDigest()
				}(r)
			}
			wg.Wait()

			// The index must still be coherent: every survivor reachable,
			// digest computable without panic.
			if l.IndexDigest() == "" {
				t.Fatal("empty digest after churn")
			}
		})
	}
}

// TestTopKCtxDeadlinePrompt: a short deadline against a large
// NoBlocking scan with an expensive scorer must return promptly — the
// deadline-propagation guarantee, not just an error code.
func TestTopKCtxDeadlinePrompt(t *testing.T) {
	records, instances := engineWorld(t, 400, 85)
	l := NewRuleLinker()
	l.NoBlocking = true
	l.Workers = 1
	for i, rec := range records {
		l.Add(InstanceID(instances[i]), rec)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure expiry before the scan starts
	start := time.Now()
	q := evolvedFrom(records[1], 1)
	_, err := l.TopKCtx(ctx, q, 10)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("canceled scan took %v — cancellation not prompt", d)
	}
}
