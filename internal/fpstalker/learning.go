package fpstalker

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/parallel"
)

// LearnLinker is the learning-based FP-Stalker variant: a random
// forest scores (known fingerprint, query fingerprint) pairs on a
// similarity feature vector; candidates above Threshold are ranked by
// probability. Candidate generation prefilters on browser family (as
// the original does) — served from the engine's blocking index — and
// each surviving pair costs a feature-vector build plus a forest
// evaluation, so the candidate set is scored on a worker pool. The
// stored side of every pair vector reuses the UA parsed at Add time
// instead of re-parsing O(N) times per query. Add/TopK are safe for
// concurrent callers; set NoBlocking and Workers=1 for the paper's
// Figure 9 scalability-wall measurement.
type LearnLinker struct {
	Forest *mlearn.Forest
	// Threshold is the minimum link probability (default 0.5).
	Threshold float64
	// NoBlocking disables the candidate-blocking index so every query
	// scans the whole table (ablation).
	NoBlocking bool
	// Workers caps the scoring pool: 0 means GOMAXPROCS, 1 is serial.
	Workers int
	// ScalarScore forces per-pair scalar forest evaluation instead of
	// the default batch kernel, which scores whole candidate blocks one
	// forest pass at a time (ablation / equivalence baseline; both
	// paths return identical rankings).
	ScalarScore bool

	eng *engine
}

// NewLearnLinker wraps a trained pair model.
func NewLearnLinker(f *mlearn.Forest) *LearnLinker {
	return &LearnLinker{Forest: f, Threshold: 0.5, eng: newEngine()}
}

// Len implements Linker.
func (l *LearnLinker) Len() int { return l.eng.size() }

// Add implements Linker.
func (l *LearnLinker) Add(id string, rec *fingerprint.Record) {
	e := newPairEntry(id, rec)
	l.eng.mu.Lock()
	l.eng.add(id, e)
	l.eng.mu.Unlock()
}

// Remove implements DynamicLinker: it deletes id's entry from the
// table and the blocking index, releasing its interned payloads, and
// reports whether the instance was known. Safe for concurrent use with
// Add and TopK.
func (l *LearnLinker) Remove(id string) bool {
	l.eng.mu.Lock()
	_, known := l.eng.remove(id)
	l.eng.mu.Unlock()
	return known
}

// IndexDigest implements DynamicLinker: a canonical digest over the
// entry table and the blocking index.
func (l *LearnLinker) IndexDigest() string {
	l.eng.mu.RLock()
	defer l.eng.mu.RUnlock()
	return l.eng.indexDigest()
}

// TopK implements Linker.
func (l *LearnLinker) TopK(rec *fingerprint.Record, k int) []Candidate {
	cands, _ := l.TopKCtx(nil, rec, k) // nil ctx: never canceled
	return cands
}

// TopKCtx is TopK with cooperative cancellation; see
// RuleLinker.TopKCtx for the contract.
func (l *LearnLinker) TopKCtx(ctx context.Context, rec *fingerprint.Record, k int) ([]Candidate, error) {
	if k <= 0 {
		return nil, nil
	}
	// One query-side entry per TopK: the UA parse and the feature keys
	// are computed once here instead of once per candidate pair.
	q := newPairEntry("", rec)
	l.eng.mu.RLock()
	defer l.eng.mu.RUnlock()
	cs := l.eng.learnCandidates(q, l.NoBlocking)
	// Prefilter: browser family must match when both parse. Kept here
	// (not only in the blocking index) so the NoBlocking scan returns
	// identical results.
	reject := func(e *entry) bool {
		return q.ok && e.ok && (q.ua.Browser != e.ua.Browser || q.ua.Mobile != e.ua.Mobile)
	}
	if l.ScalarScore {
		return l.eng.scoreTopK(ctx, cs, l.Workers, k, func(e *entry) (float64, bool) {
			if reject(e) {
				return 0, false
			}
			vp := vecPool.Get().(*[]float64)
			v := appendPairVector((*vp)[:0], e, q)
			p, ok := l.Forest.PredictProbaAtLeast(v, l.Threshold)
			*vp = v
			vecPool.Put(vp)
			return p, ok
		})
	}
	// Batch path: each candidate block becomes one row-major matrix of
	// pair vectors scored by a single forest pass (every tree walks the
	// whole block before the next tree loads), instead of one forest
	// walk per pair.
	return l.eng.scoreTopKBatch(ctx, cs, l.Workers, k, func(es []*entry, out []Candidate) []Candidate {
		s := batchPool.Get().(*batchScratch)
		kept, xs := s.kept[:0], s.xs[:0]
		for _, e := range es {
			if reject(e) {
				continue
			}
			xs = appendPairVector(xs, e, q)
			kept = append(kept, e)
		}
		if len(kept) > 0 {
			probs := s.probs[:len(kept)]
			oks := s.oks[:len(kept)]
			l.Forest.PredictProbaAtLeastBatch(xs, l.Threshold, probs, oks)
			for i, e := range kept {
				if oks[i] {
					out = append(out, Candidate{ID: e.id, Score: probs[i]})
				}
			}
		}
		s.kept, s.xs = kept, xs
		batchPool.Put(s)
		return out
	})
}

// vecPool recycles pair-vector scratch buffers across queries and
// scoring workers.
var vecPool = sync.Pool{New: func() any {
	b := make([]float64, 0, NumPairFeatures)
	return &b
}}

// batchScratch holds one scoring worker's per-block buffers: the
// row-major pair-vector matrix, the surviving entries, and the batch
// kernel's outputs. Sized to scoreBlock so a block never reallocates.
type batchScratch struct {
	xs    []float64
	kept  []*entry
	probs []float64
	oks   []bool
}

var batchPool = sync.Pool{New: func() any {
	return &batchScratch{
		xs:    make([]float64, 0, scoreBlock*NumPairFeatures),
		kept:  make([]*entry, 0, scoreBlock),
		probs: make([]float64, scoreBlock),
		oks:   make([]bool, scoreBlock),
	}
}}

// NumPairFeatures is the dimensionality of PairVector.
const NumPairFeatures = 16

// PairFeatureNames labels PairVector's dimensions, in order — used to
// report the trained model's feature importances.
var PairFeatureNames = [NumPairFeatures]string{
	"same browser family",
	"browser version movement",
	"OS version movement",
	"canvas equal",
	"GPU image equal",
	"font Jaccard",
	"plugin Jaccard",
	"language Jaccard",
	"screen equal",
	"timezone equal",
	"storage toggles equal",
	"GPU renderer equal",
	"audio equal",
	"total diff fraction",
	"rare diff fraction",
	"time gap",
}

// PairVector builds the similarity feature vector for a (known, query)
// fingerprint pair — per-feature equality indicators, Jaccard
// similarities for set features, version movement, and the time gap —
// the same flavour of features the original FP-Stalker model uses.
// User agents are parsed through the memoizing CachedParse; callers
// that already hold parsed UAs and precomputed feature keys (the
// linker's entries) use pairVectorEntries directly.
func PairVector(known, query *fingerprint.Record) []float64 {
	return pairVectorEntries(newPairEntry("", known), newPairEntry("", query))
}

// pairVectorEntries is PairVector with both sides already preprocessed
// — the cached path the matching engine threads its per-entry UAs and
// feature keys through, so scoring N candidates costs zero re-parses
// and zero key rebuilds.
func pairVectorEntries(known, query *entry) []float64 {
	return appendPairVector(make([]float64, 0, NumPairFeatures), known, query)
}

// appendPairVector builds the pair feature vector into dst, which the
// scoring hot path recycles through a pool so a query over an
// N-candidate bucket performs no per-pair allocation.
func appendPairVector(dst []float64, known, query *entry) []float64 {
	eq := func(cond bool) float64 {
		if cond {
			return 1
		}
		return 0
	}
	var verAdvance, osAdvance, sameFamily float64
	if known.ok && query.ok {
		kUA, qUA := known.ua, query.ua
		sameFamily = eq(kUA.Browser == qUA.Browser)
		switch qUA.BrowserVersion.Compare(kUA.BrowserVersion) {
		case 0:
			verAdvance = 1 // same version
		case 1:
			verAdvance = 0.5 // plausible update
		default:
			verAdvance = 0 // downgrade
		}
		switch qUA.OSVersion.Compare(kUA.OSVersion) {
		case 0:
			osAdvance = 1
		case 1:
			osAdvance = 0.5
		default:
			osAdvance = 0
		}
	}
	gapDays := 0.0
	if known.hasTime && query.hasTime {
		// Identical to Time.Sub(...).Hours() for any in-range instant;
		// out-of-range timestamps (the zero time) are gated by hasTime.
		gapDays = math.Abs(time.Duration(query.timeNS-known.timeNS).Hours()) / 24
	}
	total, rare := countKeyDiffs(known.keys, query.keys)
	ak, bk := known.keys, query.keys
	return append(dst,
		sameFamily,
		verAdvance,
		osAdvance,
		eq(ak[keyIdxCanvas] == bk[keyIdxCanvas]),
		eq(ak[keyIdxGPUImage] == bk[keyIdxGPUImage]),
		jaccardSorted(known.fonts, query.fonts),
		jaccardSorted(known.plugins, query.plugins),
		jaccardSorted(known.langs, query.langs),
		eq(ak[keyIdxScreen] == bk[keyIdxScreen]),
		eq(ak[keyIdxTimezone] == bk[keyIdxTimezone]),
		eq(known.cookie == query.cookie && known.localStorage == query.localStorage),
		eq(ak[keyIdxGPURenderer] == bk[keyIdxGPURenderer]),
		eq(ak[keyIdxAudio] == bk[keyIdxAudio]),
		float64(total)/float64(fingerprint.NumFeatures),
		float64(rare)/4,
		math.Min(gapDays/120, 1),
	)
}

// jaccardSorted is the Jaccard similarity of two sorted unique hash
// sets (see sortedHashSet): a single merge walk, no allocation. It
// agrees with jaccard over the original string lists up to 64-bit
// element-hash collisions.
func jaccardSorted(a, b []uint64) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// jaccard is the set Jaccard similarity of two string lists. Both
// sides are deduplicated, so the result is a true Jaccard in [0, 1]
// regardless of upstream hygiene — duplicated entries in either list
// neither inflate the intersection nor the union.
func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[string]bool, len(a))
	for _, s := range a {
		setA[s] = true
	}
	setB := make(map[string]bool, len(b))
	inter := 0
	for _, s := range b {
		if setB[s] {
			continue
		}
		setB[s] = true
		if setA[s] {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// trainPair is one labelled training example with its provenance kept
// so the sampler can be audited.
type trainPair struct {
	x         []float64
	label     int
	knownInst int // instance of the stored-side record
	queryInst int // instance of the query-side record
}

// negativeDrawTries bounds the resampling when a negative draw hits the
// query's own instance: with a 4096-record pool the odds of 16 straight
// same-instance draws are negligible unless the pool genuinely contains
// nothing else, in which case the negative is skipped.
const negativeDrawTries = 16

// negPoolSize is the sliding-window size of the negative-sampling pool.
const negPoolSize = 4096

// negPool is the fixed-capacity sliding window of recent records the
// negative sampler draws from. The historical implementation kept a
// slice and re-sliced off its front (`pool = pool[len-4096:]`), which
// pinned the ever-growing backing array for the whole stream; the ring
// writes in place and holds exactly negPoolSize slots. Logical index i
// (0 = oldest retained record) maps onto the same record the sliced
// window exposed at i, so a given RNG stream draws the same records as
// before.
type negPool struct {
	buf   []negPoolRec
	count int // total records ever pushed
}

type negPoolRec struct {
	idx  int32 // index into the record stream
	inst int32
}

func newNegPool() *negPool { return &negPool{buf: make([]negPoolRec, negPoolSize)} }

func (p *negPool) push(idx, inst int32) {
	p.buf[p.count%negPoolSize] = negPoolRec{idx, inst}
	p.count++
}

func (p *negPool) size() int { return min(p.count, negPoolSize) }

func (p *negPool) at(i int) negPoolRec {
	if p.count <= negPoolSize {
		return p.buf[i]
	}
	return p.buf[(p.count+i)%negPoolSize]
}

// pairSpec is one sampled (known, query) pair before its feature vector
// exists: record indices plus the label. Splitting sampling from vector
// construction is what lets the vectors build in parallel while the
// sampled sequence stays identical to the serial RNG stream.
type pairSpec struct {
	known, query int32
	label        int8
}

// samplePairSpecs runs the sequential sampling pass of pairTrainingSet:
// consecutive fingerprints of one instance are positives; records of
// *other* instances drawn from the sliding pool are negatives. Draws
// that land on the query's own instance are rejected and retried a
// bounded number of times — a same-instance pair labelled 0 would
// teach the forest to unlink true matches.
func samplePairSpecs(instances []int, rng *rand.Rand) []pairSpec {
	last := make(map[int]int32) // instance → index of its latest record
	var specs []pairSpec
	pool := newNegPool()
	for i, inst := range instances {
		if prev, ok := last[inst]; ok {
			specs = append(specs, pairSpec{prev, int32(i), 1})
			// Two negatives per positive keeps classes balanced enough.
			for n := 0; n < 2 && pool.size() > 1; n++ {
				for tries := 0; tries < negativeDrawTries; tries++ {
					cand := pool.at(rng.Intn(pool.size()))
					if int(cand.inst) == inst {
						continue
					}
					specs = append(specs, pairSpec{cand.idx, int32(i), 0})
					break
				}
			}
		}
		last[inst] = int32(i)
		pool.push(int32(i), int32(inst))
	}
	return specs
}

// pairTrainingSet builds the labelled pair set TrainPairModel fits, in
// two phases: a sequential sampling pass (samplePairSpecs — cheap, RNG
// order preserved) followed by a parallel construction pass that
// preprocesses each referenced record once (UA parse, feature keys,
// sorted set hashes) and builds the pair vectors on the worker pool.
// The PairVector builds dominate TrainPairModel preprocessing; both
// the output pairs and their order are identical for every worker
// count, and to the historical fully-serial builder.
func pairTrainingSet(records []*fingerprint.Record, instances []int, rng *rand.Rand, workers int) []trainPair {
	specs := samplePairSpecs(instances, rng)
	used := make([]bool, len(records))
	for _, s := range specs {
		used[s.known] = true
		used[s.query] = true
	}
	entries := make([]*entry, len(records))
	parallel.ForEach(workers, len(records), func(i int) {
		if used[i] {
			entries[i] = newPairEntry("", records[i])
		}
	})
	return parallel.Map(workers, len(specs), func(i int) trainPair {
		s := specs[i]
		return trainPair{
			x:         appendPairVector(make([]float64, 0, NumPairFeatures), entries[s.known], entries[s.query]),
			label:     int(s.label),
			knownInst: instances[s.known],
			queryInst: instances[s.query],
		}
	})
}

// PairTrainingSet builds the labelled pair-vector training set that
// TrainPairModel fits — rows in sampling order and their 0/1 labels —
// for callers that train or benchmark the forest directly. seed must
// match the ForestConfig seed for the pair stream TrainPairModel would
// draw; workers follows the package convention (1 serial, else NumCPU)
// and never changes the output.
func PairTrainingSet(records []*fingerprint.Record, instances []int, seed int64, workers int) ([][]float64, []int, error) {
	if len(records) != len(instances) {
		return nil, nil, fmt.Errorf("fpstalker: %d records but %d instance labels", len(records), len(instances))
	}
	rng := rand.New(rand.NewSource(seed + 99))
	pairs := pairTrainingSet(records, instances, rng, workers)
	if len(pairs) == 0 {
		return nil, nil, fmt.Errorf("fpstalker: no training pairs (need repeat visits)")
	}
	X := make([][]float64, len(pairs))
	y := make([]int, len(pairs))
	for i, p := range pairs {
		X[i], y[i] = p.x, p.label
	}
	return X, y, nil
}

// TrainPairModel builds a training set from a labelled record stream
// (records in time order with their true instance IDs) and fits the
// forest: consecutive fingerprints of one instance are positives;
// fingerprints of other instances sampled at the same time are
// negatives. Preprocessing and tree training both run on cfg.Workers
// workers; the model is identical for every worker count.
func TrainPairModel(records []*fingerprint.Record, instances []int, cfg mlearn.ForestConfig) (*mlearn.Forest, error) {
	X, y, err := PairTrainingSet(records, instances, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return mlearn.TrainForest(X, y, cfg)
}
