package fpstalker

import (
	"fmt"
	"math"
	"math/rand"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/useragent"
)

// LearnLinker is the learning-based FP-Stalker variant: a random
// forest scores (known fingerprint, query fingerprint) pairs on a
// similarity feature vector; candidates above Threshold are ranked by
// probability. Candidate generation still prefilters on browser
// family (as the original does), but each surviving pair costs a
// feature-vector build plus a forest evaluation — the source of the
// scalability wall the paper reports.
type LearnLinker struct {
	Forest *mlearn.Forest
	// Threshold is the minimum link probability (default 0.5).
	Threshold float64

	entries []*entry
	byID    map[string]int
}

// NewLearnLinker wraps a trained pair model.
func NewLearnLinker(f *mlearn.Forest) *LearnLinker {
	return &LearnLinker{Forest: f, Threshold: 0.5, byID: make(map[string]int)}
}

// Len implements Linker.
func (l *LearnLinker) Len() int { return len(l.entries) }

// Add implements Linker.
func (l *LearnLinker) Add(id string, rec *fingerprint.Record) {
	e := newEntry(id, rec)
	if i, ok := l.byID[id]; ok {
		l.entries[i] = e
		return
	}
	l.entries = append(l.entries, e)
	l.byID[id] = len(l.entries) - 1
}

// TopK implements Linker.
func (l *LearnLinker) TopK(rec *fingerprint.Record, k int) []Candidate {
	if k <= 0 {
		return nil
	}
	qUA, err := useragent.Parse(rec.FP.UserAgent)
	qOK := err == nil
	var cands []Candidate
	for _, e := range l.entries {
		// Prefilter: browser family must match when both parse.
		if qOK && e.ok && (qUA.Browser != e.ua.Browser || qUA.Mobile != e.ua.Mobile) {
			continue
		}
		p := l.Forest.PredictProba(PairVector(e.rec, rec))
		if p >= l.Threshold {
			cands = append(cands, Candidate{ID: e.id, Score: p})
		}
	}
	sortCandidates(cands)
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// NumPairFeatures is the dimensionality of PairVector.
const NumPairFeatures = 16

// PairFeatureNames labels PairVector's dimensions, in order — used to
// report the trained model's feature importances.
var PairFeatureNames = [NumPairFeatures]string{
	"same browser family",
	"browser version movement",
	"OS version movement",
	"canvas equal",
	"GPU image equal",
	"font Jaccard",
	"plugin Jaccard",
	"language Jaccard",
	"screen equal",
	"timezone equal",
	"storage toggles equal",
	"GPU renderer equal",
	"audio equal",
	"total diff fraction",
	"rare diff fraction",
	"time gap",
}

// PairVector builds the similarity feature vector for a (known, query)
// fingerprint pair — per-feature equality indicators, Jaccard
// similarities for set features, version movement, and the time gap —
// the same flavour of features the original FP-Stalker model uses.
func PairVector(known, query *fingerprint.Record) []float64 {
	a, b := known.FP, query.FP
	eq := func(cond bool) float64 {
		if cond {
			return 1
		}
		return 0
	}
	var verAdvance, osAdvance, sameFamily float64
	ua1, err1 := useragent.Parse(a.UserAgent)
	ua2, err2 := useragent.Parse(b.UserAgent)
	if err1 == nil && err2 == nil {
		sameFamily = eq(ua1.Browser == ua2.Browser)
		switch ua2.BrowserVersion.Compare(ua1.BrowserVersion) {
		case 0:
			verAdvance = 1 // same version
		case 1:
			verAdvance = 0.5 // plausible update
		default:
			verAdvance = 0 // downgrade
		}
		switch ua2.OSVersion.Compare(ua1.OSVersion) {
		case 0:
			osAdvance = 1
		case 1:
			osAdvance = 0.5
		default:
			osAdvance = 0
		}
	}
	gapDays := 0.0
	if !known.Time.IsZero() && !query.Time.IsZero() {
		gapDays = math.Abs(query.Time.Sub(known.Time).Hours()) / 24
	}
	total, rare := countFeatureDiffs(a, b)
	return []float64{
		sameFamily,
		verAdvance,
		osAdvance,
		eq(a.CanvasHash == b.CanvasHash),
		eq(a.GPUImageHash == b.GPUImageHash),
		jaccard(a.Fonts, b.Fonts),
		jaccard(a.Plugins, b.Plugins),
		jaccard(a.Languages, b.Languages),
		eq(a.ScreenResolution == b.ScreenResolution),
		eq(a.TimezoneOffset == b.TimezoneOffset),
		eq(a.CookieEnabled == b.CookieEnabled && a.LocalStorage == b.LocalStorage),
		eq(a.GPURenderer == b.GPURenderer),
		eq(a.AudioInfo == b.AudioInfo),
		float64(total) / float64(fingerprint.NumFeatures),
		float64(rare) / 4,
		math.Min(gapDays/120, 1),
	}
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[string]bool, len(a))
	for _, s := range a {
		set[s] = true
	}
	inter := 0
	for _, s := range b {
		if set[s] {
			inter++
		}
	}
	union := len(set) + len(b) - inter
	// Note: len(b) may double-count duplicates; feature lists are
	// deduplicated upstream so this is exact in practice.
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// TrainPairModel builds a training set from a labelled record stream
// (records in time order with their true instance IDs) and fits the
// forest: consecutive fingerprints of one instance are positives;
// fingerprints of other instances sampled at the same time are
// negatives.
func TrainPairModel(records []*fingerprint.Record, instances []int, cfg mlearn.ForestConfig) (*mlearn.Forest, error) {
	if len(records) != len(instances) {
		return nil, fmt.Errorf("fpstalker: %d records but %d instance labels", len(records), len(instances))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	last := make(map[int]*fingerprint.Record)
	var X [][]float64
	var y []int
	var pool []*fingerprint.Record // recent records for negative sampling
	for i, rec := range records {
		inst := instances[i]
		if prev, ok := last[inst]; ok {
			X = append(X, PairVector(prev, rec))
			y = append(y, 1)
			// Two negatives per positive keeps classes balanced enough.
			for n := 0; n < 2 && len(pool) > 1; n++ {
				neg := pool[rng.Intn(len(pool))]
				if neg == prev {
					continue
				}
				X = append(X, PairVector(neg, rec))
				y = append(y, 0)
			}
		}
		last[inst] = rec
		pool = append(pool, rec)
		if len(pool) > 4096 {
			pool = pool[len(pool)-4096:]
		}
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("fpstalker: no training pairs (need repeat visits)")
	}
	return mlearn.TrainForest(X, y, cfg)
}
