package fpstalker

import (
	"math/rand"
	"reflect"
	"testing"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
)

// TestScalarBatchTopKEquivalence pins the learning linker's batch
// scoring path (the default) against the scalar per-pair path: both
// must return identical rankings, with and without blocking, serial
// and parallel. The batch kernel is exact, the prefilter is shared,
// and blocks preserve candidate order, so equality is bitwise.
func TestScalarBatchTopKEquivalence(t *testing.T) {
	records, instances := engineWorld(t, 400, 73)
	forest, err := TrainPairModel(records, instances, mlearn.ForestConfig{Seed: 7, NumTrees: 8, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name       string
		noBlocking bool
		workers    int
	}{
		{"blocked-serial", false, 1},
		{"blocked-parallel", false, 4},
		{"scan-serial", true, 1},
		{"scan-parallel", true, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			scalar := NewLearnLinker(forest)
			scalar.ScalarScore = true
			scalar.NoBlocking = mode.noBlocking
			scalar.Workers = mode.workers
			batch := NewLearnLinker(forest)
			batch.NoBlocking = mode.noBlocking
			batch.Workers = mode.workers
			for i, rec := range records {
				scalar.Add(InstanceID(instances[i]), rec)
				batch.Add(InstanceID(instances[i]), rec)
			}
			for qi, q := range goldenQueries(records) {
				want := scalar.TopK(q, 10)
				got := batch.TopK(q, 10)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("query %d: batch ranking diverged\n scalar: %v\n batch:  %v", qi, want, got)
				}
			}
		})
	}
}

// TestNegPoolMatchesSliceWindow pins the ring buffer against a
// reference sliding-slice implementation (the historical pool, minus
// its pinned backing array): same pushes, same logical window, same
// record under every index.
func TestNegPoolMatchesSliceWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ring := newNegPool()
	var ref []negPoolRec
	for i := 0; i < 3*negPoolSize+57; i++ {
		r := negPoolRec{int32(i), int32(i % 97)}
		ring.push(r.idx, r.inst)
		ref = append(ref, r)
		if len(ref) > negPoolSize {
			ref = ref[len(ref)-negPoolSize:]
		}
		if ring.size() != len(ref) {
			t.Fatalf("push %d: ring size %d, reference %d", i, ring.size(), len(ref))
		}
		// Spot-check random draws plus the window edges.
		for _, j := range []int{0, len(ref) - 1, rng.Intn(len(ref)), rng.Intn(len(ref))} {
			if got := ring.at(j); got != ref[j] {
				t.Fatalf("push %d: ring.at(%d) = %+v, reference %+v", i, j, got, ref[j])
			}
		}
	}
}

// TestPairTrainingSetWorkerInvariance: the two-phase builder must
// produce the same pairs in the same order for every worker count —
// sampling is sequential, and vector construction is order-collected.
func TestPairTrainingSetWorkerInvariance(t *testing.T) {
	records, instances := engineWorld(t, 200, 51)
	ref := pairTrainingSet(records, instances, rand.New(rand.NewSource(9)), 1)
	if len(ref) == 0 {
		t.Fatal("no pairs sampled")
	}
	for _, workers := range []int{2, 4, 0} {
		got := pairTrainingSet(records, instances, rand.New(rand.NewSource(9)), workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d pairs differ from serial", workers)
		}
	}
}

// TestPairTrainingSetOverflowsPool drives more records than the
// negative pool holds so the ring wraps, then checks sampling
// invariants still hold (regression guard for the wrap arithmetic).
func TestPairTrainingSetOverflowsPool(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	n := negPoolSize + 500
	records := make([]*fingerprint.Record, 0, n)
	instances := make([]int, 0, n)
	for i := 0; i < n; i++ {
		inst := i % (n / 3) // every instance revisits → positives exist late in the stream
		records = append(records, streamRecord(inst, i))
		instances = append(instances, inst)
	}
	pairs := pairTrainingSet(records, instances, rand.New(rand.NewSource(3)), 0)
	if len(pairs) == 0 {
		t.Fatal("no pairs")
	}
	for _, p := range pairs {
		if p.label == 0 && p.knownInst == p.queryInst {
			t.Fatalf("same-instance negative after pool wrap (inst %d)", p.knownInst)
		}
		if p.label == 1 && p.knownInst != p.queryInst {
			t.Fatalf("cross-instance positive (%d vs %d)", p.knownInst, p.queryInst)
		}
	}
}

// TestTrainPairModelWorkerInvariance: the exported trainer must give a
// byte-identical model for every Workers setting — preprocessing and
// tree training are both order-collected.
func TestTrainPairModelWorkerInvariance(t *testing.T) {
	records, instances := engineWorld(t, 200, 52)
	cfg := mlearn.ForestConfig{Seed: 4, NumTrees: 6, MaxDepth: 5}
	cfg.Workers = 1
	ref, err := TrainPairModel(records, instances, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	alt, err := TrainPairModel(records, instances, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, alt) {
		t.Fatal("Workers=4 model differs from Workers=1")
	}
	if !reflect.DeepEqual(ref.Importances(), alt.Importances()) {
		t.Fatal("importances differ across worker counts")
	}
}
