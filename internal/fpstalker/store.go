package fpstalker

// The struct-of-arrays entry table. The historical layout kept one
// heap-allocated *entry per instance, each dragging a full
// *fingerprint.Record (a ~30-field struct plus its slices) — ~1.5 KB
// and dozens of GC-visible pointers per entry. The SoA table keeps
// only what scoring, digesting and indexing actually read, split by
// access pattern:
//
//   - hot:  the scalar scoring fields every candidate scan touches,
//     packed into one pointer-free 48-byte row (one cache line covers
//     a row and its neighbor);
//   - cold: the hashes and bucket handles only Add/Remove/digest and
//     the exact-match index consult;
//   - ids:  the instance IDs (the table's only GC-visible pointers
//     besides the intern pools).
//
// Heavy payloads (UA string + parse, feature-key vectors, sorted set
// hashes) live once in the refcounted intern pools (intern.go) and
// rows hold uint32 handles. Scorers never see any of this: fillView
// materializes the historical *entry shape on demand, so the rule and
// learning scorers — and therefore rankings and digests — are
// byte-identical to the pointer-per-entry layout.

// Row flag bits (hotRow.flags).
const (
	rowOK           byte = 1 << iota // UA parsed
	rowHasTime                       // record time non-zero
	rowCookie                        // CookieEnabled
	rowLocalStorage                  // LocalStorage
)

// hotRow holds the per-entry scalars the candidate scans read.
type hotRow struct {
	hrs     float64 // record time in fractional hours (recency nudge)
	timeNS  int64   // record time in Unix nanoseconds (pair time gap, digest)
	uaID    uint32  // uaPool handle
	keysID  uint32  // vecIntern handle: non-IP feature keys
	fontsID uint32  // vecIntern handles: sorted set hashes (0 for rule entries)
	plugsID uint32
	langsID uint32
	flags   byte
}

// coldRow holds the per-entry fields only mutation, digesting and the
// exact-match index read.
type coldRow struct {
	fpHash    uint64 // FP.Hash(false): digest + exact-match bucket key
	eqHash    uint64 // FP.Hash(true): the hash FP.Equal compares
	fontsHash uint64 // HashSet(Fonts): FP.Equal's font-list guard
	blockID   uint32 // keyReg handles of the row's blocking buckets
	famID     uint32
}

type soa struct {
	ids  []string
	hot  []hotRow
	cold []coldRow
	uas  uaPool
	vecs vecIntern
}

func (t *soa) init() {
	t.uas.init()
	t.vecs.init()
}

func (t *soa) len() int { return len(t.ids) }

// appendRow adds e as a new row and returns its index.
func (t *soa) appendRow(id string, e *entry) int {
	t.ids = append(t.ids, "")
	t.hot = append(t.hot, hotRow{})
	t.cold = append(t.cold, coldRow{})
	i := len(t.ids) - 1
	t.setRow(i, id, e)
	return i
}

// setRow writes e into row i, interning its payloads (one reference
// each). The row's previous payloads must already be released.
func (t *soa) setRow(i int, id string, e *entry) {
	var flags byte
	if e.ok {
		flags |= rowOK
	}
	if e.hasTime {
		flags |= rowHasTime
	}
	if e.cookie {
		flags |= rowCookie
	}
	if e.localStorage {
		flags |= rowLocalStorage
	}
	t.ids[i] = id
	t.hot[i] = hotRow{
		hrs:     e.hrs,
		timeNS:  e.timeNS,
		uaID:    t.uas.intern(e.uaStr),
		keysID:  t.vecs.intern(e.keys),
		fontsID: t.vecs.intern(e.fonts),
		plugsID: t.vecs.intern(e.plugins),
		langsID: t.vecs.intern(e.langs),
		flags:   flags,
	}
	t.cold[i] = coldRow{fpHash: e.fpHash, eqHash: e.eqHash, fontsHash: e.fontsHash}
}

// releaseRow drops row i's intern references (before overwrite or
// removal). The eviction path runs through here: every Remove decrefs
// the interned payloads, so a payload's slot frees exactly when its
// last entry goes.
func (t *soa) releaseRow(i int) {
	h := &t.hot[i]
	t.uas.release(h.uaID)
	t.vecs.release(h.keysID)
	t.vecs.release(h.fontsID)
	t.vecs.release(h.plugsID)
	t.vecs.release(h.langsID)
}

// moveRow copies row from onto row to (the swap-delete fill). No
// refcounts change: the row keeps its references, it just changes
// position.
func (t *soa) moveRow(from, to int) {
	t.ids[to] = t.ids[from]
	t.hot[to] = t.hot[from]
	t.cold[to] = t.cold[from]
}

// truncate drops the last row, whose references must already be
// released or moved.
func (t *soa) truncate() {
	n := len(t.ids) - 1
	t.ids[n] = "" // release the ID string for GC
	t.ids = t.ids[:n]
	t.hot = t.hot[:n]
	t.cold = t.cold[:n]
}

// fillView materializes row i as the historical *entry shape the
// scorers consume. Only the scoring fields are filled — the cold
// hashes stay zero — and the slices and parsed UA alias the intern
// pools, valid for as long as the caller holds the engine's lock.
func (t *soa) fillView(i int, v *entry) {
	h := &t.hot[i]
	slot := t.uas.slots[h.uaID]
	v.id = t.ids[i]
	v.uaStr = slot.str
	if h.flags&rowOK != 0 {
		v.ok, v.ua = true, &slot.ua
	} else {
		v.ok, v.ua = false, nil
	}
	v.cookie = h.flags&rowCookie != 0
	v.localStorage = h.flags&rowLocalStorage != 0
	v.hasTime = h.flags&rowHasTime != 0
	v.hrs = h.hrs
	v.timeNS = h.timeNS
	v.keys = t.vecs.data(h.keysID)
	v.fonts = t.vecs.data(h.fontsID)
	v.plugins = t.vecs.data(h.plugsID)
	v.langs = t.vecs.data(h.langsID)
}

// StoreStats describes the interned store's occupancy — the
// observability hook the bench harness and the refcount property test
// read.
type StoreStats struct {
	// Entries is the number of rows in the table.
	Entries int
	// UAStrings and Vectors count the distinct interned payloads
	// currently alive (each shared by every entry referencing it).
	UAStrings int
	Vectors   int
	// VectorBytes is the payload bytes held by the vector pool.
	VectorBytes int64
	// InternHits/InternMisses count intern() calls that found a shared
	// payload vs allocated a new slot, across both pools. The hit rate
	// is the sharing factor the memory savings come from.
	InternHits   uint64
	InternMisses uint64
}

func (g *engine) storeStats() StoreStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return StoreStats{
		Entries:      g.tab.len(),
		UAStrings:    g.tab.uas.live(),
		Vectors:      g.tab.vecs.live(),
		VectorBytes:  g.tab.vecs.bytes,
		InternHits:   g.tab.uas.hits + g.tab.vecs.hits,
		InternMisses: g.tab.uas.misses + g.tab.vecs.misses,
	}
}

// StoreStats reports the interned store's occupancy and intern-pool
// hit counters.
func (l *RuleLinker) StoreStats() StoreStats { return l.eng.storeStats() }

// StoreStats reports the interned store's occupancy and intern-pool
// hit counters.
func (l *LearnLinker) StoreStats() StoreStats { return l.eng.storeStats() }
