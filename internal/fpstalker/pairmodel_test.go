package fpstalker

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

func TestJaccardDeduplicates(t *testing.T) {
	cases := []struct {
		name string
		a, b []string
		want float64
	}{
		{"both empty", nil, nil, 1},
		{"identical", []string{"Arial", "Calibri"}, []string{"Arial", "Calibri"}, 1},
		{"duplicated b, equal sets", []string{"Arial", "Calibri"}, []string{"Arial", "Arial", "Calibri", "Calibri"}, 1},
		{"duplicated a, equal sets", []string{"Arial", "Arial", "Calibri"}, []string{"Arial", "Calibri"}, 1},
		{"duplicates on both, partial overlap", []string{"x", "y", "y"}, []string{"y", "z", "z"}, 1.0 / 3.0},
		{"disjoint with duplicates", []string{"a", "a"}, []string{"b", "b", "b"}, 0},
		{"one side empty", []string{"a"}, nil, 0},
	}
	for _, tc := range cases {
		if got := jaccard(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: jaccard = %v, want %v", tc.name, got, tc.want)
		}
		// Jaccard is symmetric; the old implementation wasn't under
		// duplication (it could even exceed 1).
		if got := jaccard(tc.b, tc.a); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s (swapped): jaccard = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPairVectorBoundedUnderDuplicatedFonts(t *testing.T) {
	a := chromeRecord(useragent.V(63), tBase)
	b := chromeRecord(useragent.V(63), tBase.Add(time.Hour))
	a.FP.Fonts = []string{"Arial", "Calibri"}
	b.FP.Fonts = []string{"Arial", "Arial", "Calibri", "Calibri"}
	v := PairVector(a, b)
	if v[5] != 1 { // font Jaccard: the sets are equal
		t.Errorf("font Jaccard under duplication = %v, want 1", v[5])
	}
	for i, x := range v {
		if x < 0 || x > 1 {
			t.Errorf("feature %d (%s) = %v outside [0,1]", i, PairFeatureNames[i], x)
		}
	}
}

// streamRecord gives each instance a distinct stable fingerprint so
// pairs are unambiguous.
func streamRecord(inst int, visit int) *fingerprint.Record {
	rec := chromeRecord(useragent.V(63), tBase.Add(time.Duration(visit)*time.Hour))
	rec.FP.TimezoneOffset = inst * 15
	rec.FP.CanvasHash = InstanceID(inst)
	return rec
}

// TestNegativeSamplingNeverSameInstance: the satellite bugfix — a
// negative draw must never pair a record with its own instance, even
// when the pool is dominated by that instance's records.
func TestNegativeSamplingNeverSameInstance(t *testing.T) {
	// Instance 0 floods the pool; instance 1 contributes exactly one
	// record, the only legal negative.
	var records []*fingerprint.Record
	var instances []int
	for v := 0; v < 12; v++ {
		records = append(records, streamRecord(0, v))
		instances = append(instances, 0)
	}
	records = append(records, streamRecord(1, 12))
	instances = append(instances, 1)
	for v := 13; v < 20; v++ {
		records = append(records, streamRecord(0, v))
		instances = append(instances, 0)
	}

	for seed := int64(0); seed < 20; seed++ {
		pairs := pairTrainingSet(records, instances, rand.New(rand.NewSource(seed)), 1)
		for _, p := range pairs {
			if p.label == 0 && p.knownInst == p.queryInst {
				t.Fatalf("seed %d: same-instance pair (inst %d) labelled negative", seed, p.knownInst)
			}
			if p.label == 1 && p.knownInst != p.queryInst {
				t.Fatalf("seed %d: cross-instance pair (%d vs %d) labelled positive", seed, p.knownInst, p.queryInst)
			}
		}
	}
}

// TestNegativeSamplingYieldsTwoPerPositive: with a pool rich in other
// instances, the bounded retry must recover both negatives instead of
// silently emitting fewer.
func TestNegativeSamplingYieldsTwoPerPositive(t *testing.T) {
	var records []*fingerprint.Record
	var instances []int
	// Ten single-visit instances seed the pool...
	for inst := 1; inst <= 10; inst++ {
		records = append(records, streamRecord(inst, inst))
		instances = append(instances, inst)
	}
	// ...then instance 0 visits repeatedly, yielding positives.
	for v := 11; v < 17; v++ {
		records = append(records, streamRecord(0, v))
		instances = append(instances, 0)
	}
	pairs := pairTrainingSet(records, instances, rand.New(rand.NewSource(5)), 1)
	pos, neg := 0, 0
	for _, p := range pairs {
		if p.label == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 {
		t.Fatal("no positives produced")
	}
	if neg != 2*pos {
		t.Fatalf("got %d negatives for %d positives, want exactly 2 per positive", neg, pos)
	}
}
