package fpstalker

import (
	"fmt"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/mlearn"
)

// EvalResult aggregates a linking evaluation run (the Figure 9/10
// quantities). The confusion counts and the Precision/Recall/F1
// metrics promoted from it are mlearn's shared evaluation module —
// the same arithmetic the script-detection task reports — with the
// linking-specific reading: TP = truth in the top-k, FN = truth in
// the DB but missed, FP = candidates that hid or displaced the truth,
// TN = new instance correctly given no candidates.
type EvalResult struct {
	mlearn.Confusion
	Queries int

	DBSize        int           // instances known at the end
	MeanMatchTime time.Duration // mean TopK latency
}

// InstanceID renders the canonical evaluation identity for a true
// instance serial.
func InstanceID(serial int) string { return fmt.Sprintf("i%d", serial) }

// Evaluate replays a labelled record stream against the linker: each
// record is first used as a query (if its instance was seen before, the
// truth must appear in the top-k; if it is new, the linker should
// return nothing), then registered under its true identity. This is
// the FP-Stalker evaluation protocol at the heart of Figure 10.
func Evaluate(l Linker, records []*fingerprint.Record, instances []int, k int) EvalResult {
	var res EvalResult
	seen := make(map[int]bool)
	var totalTime time.Duration
	for i, rec := range records {
		inst := instances[i]
		trueID := InstanceID(inst)

		start := time.Now()
		cands := l.TopK(rec, k)
		totalTime += time.Since(start)
		res.Queries++

		if seen[inst] {
			hit := false
			for _, c := range cands {
				if c.ID == trueID {
					hit = true
					break
				}
			}
			if hit {
				res.TP++
			} else {
				res.FN++
				if len(cands) > 0 {
					res.FP++
				}
			}
		} else {
			if len(cands) == 0 {
				res.TN++
			} else {
				res.FP++
			}
		}

		l.Add(trueID, rec)
		seen[inst] = true
	}
	res.DBSize = l.Len()
	if res.Queries > 0 {
		// Round half-up rather than truncate: integer division would
		// floor a sub-nanosecond remainder to 0 and report a zero mean
		// on fast linkers with many queries.
		n := time.Duration(res.Queries)
		res.MeanMatchTime = (totalTime + n/2) / n
	}
	return res
}

// TimeMatching measures the mean TopK latency of l for the given
// queries — the Figure 9 measurement. Each linker is timed on its
// production path: for LearnLinker that is block-batched forest
// scoring (one forest pass per candidate block), unless ScalarScore
// selects the per-pair ablation.
//
// Protocol: one untimed warm-up pass over the full query set (so the
// UA parse memo, the exact-match index buckets and the CPU caches are
// in the state a steady-state server would see), then one timed pass.
// TopK never mutates the database, so both passes hit an identical
// table and the warm-up does not bias the blocked/unblocked
// comparison. The mean is rounded half-up.
func TimeMatching(l Linker, queries []*fingerprint.Record, k int) time.Duration {
	if len(queries) == 0 {
		return 0
	}
	for _, q := range queries { // warm-up, untimed
		l.TopK(q, k)
	}
	start := time.Now()
	for _, q := range queries {
		l.TopK(q, k)
	}
	n := time.Duration(len(queries))
	return (time.Since(start) + n/2) / n
}
