package fpstalker

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fpdyn/internal/hashutil"
)

// The matching engine: what turns the paper's Figure 9 linear scan into
// something a production linker can live with. Two independent levers,
// each with an ablation flag so the paper's measurement stays
// reproducible:
//
//   - candidate blocking ("Guess Who?"-style pre-filtering): entries are
//     bucketed by the identity attributes the linking rules require to
//     match exactly, so a query only ever scores entries its rules could
//     accept. Disabled by NoBlocking (the Figure 9 configuration).
//   - a worker-pool parallel scorer, chunked over the candidate set.
//     Serial when Workers == 1 or the candidate set is small.
//
// Both levers are pure optimizations: the per-entry scoring functions
// remain the complete filters, so blocked/parallel runs return exactly
// the rankings of the serial linear scan (sortCandidates' total order —
// score descending, then ID — is deterministic, and instance IDs are
// unique).
//
// Storage is the interned struct-of-arrays table of store.go: rows are
// flat pointer-free structs holding intern-pool handles, and the
// scoring loops materialize *entry-shaped views on the fly. Buckets
// are keyed by small integer handles (keyReg) so a bucket lookup costs
// one map read on a uint32, not a multi-string key hash.

// blockKey buckets parsed entries by the attributes the rule-based
// linker requires to be equal: browser family, OS family and form
// factor (rule 2) plus the user-controlled storage toggles (rule 4).
// Every component is an exact-equality constraint of the rule cascade,
// so the bucket contains a superset of what score accepts.
type blockKey struct {
	browser      string
	os           string
	mobile       bool
	cookie       bool
	localStorage bool
}

// famKey is the coarser learning-variant bucket: its prefilter
// constrains browser family and form factor but not OS.
type famKey struct {
	browser string
	mobile  bool
}

// engine is the shared storage and candidate-generation core behind
// both linkers: an RWMutex-guarded SoA entry table plus the blocking
// indexes. The mutex makes Add/TopK safe for concurrent callers, the
// same contract internal/storage gives the collection server.
type engine struct {
	mu   sync.RWMutex
	tab  soa
	byID map[string]int // instance id → row in tab

	blockReg keyReg[blockKey]
	famReg   keyReg[famKey]

	blocks   map[uint32][]int // parsed rows by blockKey handle
	fams     map[uint32][]int // parsed rows by famKey handle
	raw      map[uint32][]int // unparsed rows by interned-UA handle
	unparsed []int            // every unparsed row
}

func newEngine() *engine {
	g := &engine{
		byID:   make(map[string]int),
		blocks: make(map[uint32][]int),
		fams:   make(map[uint32][]int),
		raw:    make(map[uint32][]int),
	}
	g.tab.init()
	g.blockReg.init()
	g.famReg.init()
	return g
}

func (g *engine) size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.tab.ids)
}

// add registers e as the latest fingerprint of id, replacing the
// instance's previous row in place (row indexes stay stable) and
// releasing the replaced row's interned payloads. It returns the row
// index and, for a replacement, the displaced fingerprint hash so the
// rule linker can repair its exact-match index. Callers must hold mu.
func (g *engine) add(id string, e *entry) (i int, oldFPHash uint64, replaced bool) {
	if i, ok := g.byID[id]; ok {
		oldFPHash = g.tab.cold[i].fpHash
		g.unindex(i)
		g.tab.releaseRow(i)
		g.tab.setRow(i, id, e)
		g.index(i)
		return i, oldFPHash, true
	}
	i = g.tab.appendRow(id, e)
	g.byID[id] = i
	g.index(i)
	return i, 0, false
}

// removal describes what remove did to the table, for callers that
// keep side indexes over row positions (the rule linker's exact-match
// hash index): the removed row's position and fingerprint hash, plus
// the swap-move that refilled the vacated slot (movedFrom == -1 when
// the removed row was last).
type removal struct {
	index       int
	fpHash      uint64
	movedFrom   int
	movedTo     int
	movedFPHash uint64
}

// remove deletes id's row from the table and every blocking structure,
// releasing its interned payloads (the eviction decref path). The
// vacated slot is filled by swap-moving the last row down, so the
// table stays dense. Callers must hold mu.
func (g *engine) remove(id string) (removal, bool) {
	i, ok := g.byID[id]
	if !ok {
		return removal{}, false
	}
	rm := removal{index: i, fpHash: g.tab.cold[i].fpHash, movedFrom: -1}
	g.unindex(i)
	g.tab.releaseRow(i)
	delete(g.byID, id)
	last := g.tab.len() - 1
	if i != last {
		// Re-point every blocking bucket holding the moved row from its
		// old slot to its new one. Its bucket handles move with the row,
		// so rebucketing needs no key recomputation.
		g.unindex(last)
		g.tab.moveRow(last, i)
		g.byID[g.tab.ids[i]] = i
		g.rebucket(i)
		rm.movedFrom, rm.movedTo = last, i
		rm.movedFPHash = g.tab.cold[i].fpHash
	}
	g.tab.truncate()
	return rm, true
}

// indexDigest is a canonical SHA-1 over the entry table and every
// blocking structure: entries sorted by instance ID with their
// fingerprint hash and timestamp, then each bucket rendered as its key
// plus the sorted member IDs. Bucket *order* is deliberately excluded —
// swap-deletes reorder buckets without changing rankings — so a
// recovered engine that replayed the same adds and evictions digests
// identically to one that never crashed. Handles resolve back to their
// key structs and strings here, so the rendered lines are
// byte-identical to the pointer-per-entry layout's. Callers must hold
// mu (read side suffices).
func (g *engine) indexDigest() string {
	var lines []string
	for id, i := range g.byID {
		lines = append(lines, fmt.Sprintf("entry %s %016x %d %t",
			id, g.tab.cold[i].fpHash, g.tab.hot[i].timeNS, g.tab.hot[i].flags&rowOK != 0))
	}
	for bid, bucket := range g.blocks {
		k := g.blockReg.keys[bid]
		lines = append(lines, "block "+fmt.Sprintf("%s|%s|%t|%t|%t", k.browser, k.os, k.mobile, k.cookie, k.localStorage)+bucketIDs(g, bucket))
	}
	for fid, bucket := range g.fams {
		k := g.famReg.keys[fid]
		lines = append(lines, "fam "+fmt.Sprintf("%s|%t", k.browser, k.mobile)+bucketIDs(g, bucket))
	}
	for uid, bucket := range g.raw {
		lines = append(lines, "raw "+g.tab.uas.slots[uid].str+bucketIDs(g, bucket))
	}
	lines = append(lines, "unparsed"+bucketIDs(g, g.unparsed))
	sort.Strings(lines)
	var b []byte
	for _, l := range lines {
		b = append(b, l...)
		b = append(b, '\n')
	}
	return hashutil.SHA1HexBytes(b)
}

// bucketIDs renders a bucket's member instance IDs, sorted.
func bucketIDs(g *engine, bucket []int) string {
	ids := make([]string, len(bucket))
	for j, i := range bucket {
		ids[j] = g.tab.ids[i]
	}
	sort.Strings(ids)
	var b []byte
	for _, id := range ids {
		b = append(b, ' ')
		b = append(b, id...)
	}
	return string(b)
}

// index computes row i's bucket handles, stores them on the row and
// appends the row to its buckets. The row must be freshly set (setRow
// leaves handles zero).
func (g *engine) index(i int) {
	h := &g.tab.hot[i]
	if h.flags&rowOK != 0 {
		slot := g.tab.uas.slots[h.uaID]
		c := &g.tab.cold[i]
		c.blockID = g.blockReg.id(blockKey{slot.ua.Browser, slot.ua.OS, slot.ua.Mobile,
			h.flags&rowCookie != 0, h.flags&rowLocalStorage != 0})
		c.famID = g.famReg.id(famKey{slot.ua.Browser, slot.ua.Mobile})
	}
	g.rebucket(i)
}

// rebucket appends row i to the buckets its stored handles name — the
// cheap half of index, reused when a swap-move repositions a row whose
// handles are already right.
func (g *engine) rebucket(i int) {
	h := &g.tab.hot[i]
	if h.flags&rowOK != 0 {
		c := &g.tab.cold[i]
		g.blocks[c.blockID] = append(g.blocks[c.blockID], i)
		g.fams[c.famID] = append(g.fams[c.famID], i)
		return
	}
	g.raw[h.uaID] = append(g.raw[h.uaID], i)
	g.unparsed = append(g.unparsed, i)
}

// unindex removes row i from every bucket its stored handles name.
func (g *engine) unindex(i int) {
	h := &g.tab.hot[i]
	if h.flags&rowOK != 0 {
		c := &g.tab.cold[i]
		removeFromBucket(g.blocks, c.blockID, i)
		removeFromBucket(g.fams, c.famID, i)
		return
	}
	removeFromBucket(g.raw, h.uaID, i)
	for j, v := range g.unparsed {
		if v == i {
			g.unparsed[j] = g.unparsed[len(g.unparsed)-1]
			g.unparsed = g.unparsed[:len(g.unparsed)-1]
			break
		}
	}
}

// removeFromBucket swap-deletes index i from m[k], dropping the key
// when its bucket empties.
func removeFromBucket[K comparable](m map[K][]int, k K, i int) {
	s := m[k]
	for j, v := range s {
		if v == i {
			s[j] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(m, k)
	} else {
		m[k] = s
	}
}

// exactMatch reports whether row i's fingerprint equals the query's,
// by the same definition as fingerprint.Equal: the IP-inclusive hash,
// the verbatim user-agent string and the font multiset (via its
// order-independent hash) must all agree. Equality by these three
// independent 64-bit+string checks diverges from Equal only on a hash
// collision (~2^-64 per pair) — the same substitution featureKeys
// documents for the similarity scores.
func (g *engine) exactMatch(i int, q *entry) bool {
	c := &g.tab.cold[i]
	return c.eqHash == q.eqHash && c.fontsHash == q.fontsHash &&
		g.tab.uas.slots[g.tab.hot[i].uaID].str == q.uaStr
}

// candSet is a candidate set as up to two row-index ranges — the
// blocking bucket and, for the learning variant, the unparsed tail —
// scored back-to-back without materializing a merged slice. all=true
// means "scan every row" (the NoBlocking ablation).
type candSet struct {
	a, b []int
	all  bool
}

// candLen is the candidate count. Callers must hold mu.
func (g *engine) candLen(cs candSet) int {
	if cs.all {
		return g.tab.len()
	}
	return len(cs.a) + len(cs.b)
}

// candIdx resolves candidate ordinal j to a row index: a's members
// first, then b's — the same order the historical concatenation
// scanned, so chunked rankings merge identically.
func (g *engine) candIdx(cs candSet, j int) int {
	if cs.all {
		return j
	}
	if j < len(cs.a) {
		return cs.a[j]
	}
	return cs.b[j-len(cs.a)]
}

// ruleCandidates generates the candidate set for the rule-based linker.
// A parsed query can only link inside its (browser, OS, mobile,
// storage toggles) bucket (rules 2 and 4). An unparseable query
// requires a verbatim UA match, which only an unparsed entry of the
// same string can satisfy — an identical string would have parsed
// identically. Both lookups are non-mutating (a query for an unseen
// key or UA finds handle 0, which no bucket uses). Callers must hold
// mu.
func (g *engine) ruleCandidates(q *entry, noBlocking bool) candSet {
	if noBlocking {
		return candSet{all: true}
	}
	if q.ok {
		bid := g.blockReg.lookup(blockKey{q.ua.Browser, q.ua.OS, q.ua.Mobile, q.cookie, q.localStorage})
		return candSet{a: g.blocks[bid]}
	}
	return candSet{a: g.raw[g.tab.uas.byStr[q.uaStr]]}
}

// learnCandidates generates the candidate set for the learning-based
// linker: its prefilter only fires when both sides parse, so a parsed
// query faces its (browser, mobile) bucket plus every unparsed entry —
// two ranges of one candSet, no concatenation — and an unparseable
// query faces the whole table. Callers must hold mu.
func (g *engine) learnCandidates(q *entry, noBlocking bool) candSet {
	if noBlocking || !q.ok {
		return candSet{all: true}
	}
	fid := g.famReg.lookup(famKey{q.ua.Browser, q.ua.Mobile})
	return candSet{a: g.fams[fid], b: g.unparsed}
}

// minParallel is the candidate count below which scoring stays serial:
// spawning the pool costs more than scanning a small bucket.
const minParallel = 256

// candPool recycles the scoring scratch buffers. A query over a large
// bucket accepts hundreds of candidates; building that slice fresh per
// TopK made the matching engine an allocation hot spot (and, against
// the dataset-sized live heap, a GC hot spot). Only the ≤ k ranked
// results are copied out to the caller.
var candPool = sync.Pool{New: func() any { return new([]Candidate) }}

// maxPooledCand caps the capacity a candidate buffer may retain in
// candPool. A NoBlocking scan over a million-entry table can accept
// hundreds of thousands of candidates; putting that buffer back at
// full capacity would pin megabytes forever off one worst-case query.
// Oversized buffers are dropped for the GC instead.
const maxPooledCand = 16384

// putCandBuf returns a scratch buffer to candPool, unless a worst-case
// query grew it past maxPooledCand.
func putCandBuf(bp *[]Candidate) {
	if cap(*bp) > maxPooledCand {
		return
	}
	*bp = (*bp)[:0]
	candPool.Put(bp)
}

// scoreTopK applies score to each candidate row's entry view (the
// whole table when cs.all is set), ranks the accepted ones best-first
// and returns the top k as a fresh slice. workers ≤ 0 sizes the pool
// to GOMAXPROCS; workers == 1 or a small candidate set keeps it
// serial. Parallel chunks are merged before the deterministic sort, so
// blocked, parallel and serial runs return identical rankings. A
// non-nil ctx is polled between cancelSlice-sized index ranges: a
// canceled query stops scoring mid-scan and returns ctx's error
// instead of burning CPU on an answer nobody is waiting for. Callers
// must hold mu (read side suffices: scoring never mutates the table).
func (g *engine) scoreTopK(ctx context.Context, cs candSet, workers, k int, score func(*entry) (float64, bool)) ([]Candidate, error) {
	n := g.candLen(cs)
	return g.rankChunks(ctx, n, workers, k, func(lo, hi int, out []Candidate) []Candidate {
		var v entry // per-call view scratch: each worker chunk fills its own
		for j := lo; j < hi; j++ {
			g.tab.fillView(g.candIdx(cs, j), &v)
			if s, ok := score(&v); ok {
				out = append(out, Candidate{ID: v.id, Score: s})
			}
		}
		return out
	})
}

// scoreBlock is the candidate-block size the batch scorers work in:
// large enough that a batch forest pass amortizes its per-block setup,
// small enough that a block of pair vectors stays cache-resident.
const scoreBlock = 256

// viewBlock is one worker's batch-scoring scratch: scoreBlock entry
// views plus stable pointers to them in the shape the batch scorer
// consumes. Fixed capacity, so unlike a grown slice it cannot pin a
// worst-case query's memory when pooled.
type viewBlock struct {
	views [scoreBlock]entry
	ptrs  []*entry
}

// blockPool recycles the per-block view buffers of scoreTopKBatch.
var blockPool = sync.Pool{New: func() any {
	b := new(viewBlock)
	b.ptrs = make([]*entry, scoreBlock)
	for i := range b.views {
		b.ptrs[i] = &b.views[i]
	}
	return b
}}

// scoreTopKBatch is scoreTopK for scorers that evaluate candidates a
// block at a time (the learning linker's batch forest kernel): score
// receives up to scoreBlock entry views and appends the accepted ones
// to out, preserving block order, so the merged ranking is identical
// to the per-entry path. Callers must hold mu.
func (g *engine) scoreTopKBatch(ctx context.Context, cs candSet, workers, k int, score func(es []*entry, out []Candidate) []Candidate) ([]Candidate, error) {
	n := g.candLen(cs)
	return g.rankChunks(ctx, n, workers, k, func(lo, hi int, out []Candidate) []Candidate {
		b := blockPool.Get().(*viewBlock)
		for lo < hi {
			end := min(lo+scoreBlock, hi)
			m := 0
			for j := lo; j < end; j++ {
				g.tab.fillView(g.candIdx(cs, j), &b.views[m])
				m++
			}
			out = score(b.ptrs[:m], out)
			lo = end
		}
		blockPool.Put(b)
		return out
	})
}

// cancelSlice is the index-range granularity at which a ctx-carrying
// query polls for cancellation: coarse enough that the poll (one atomic
// read inside ctx.Err) vanishes against scoring 4096 candidates, fine
// enough that a timed-out scan over a million-entry bucket stops within
// a fraction of a millisecond of the deadline. A multiple of scoreBlock
// so slicing never splits a batch block.
const cancelSlice = 4096

// runSliced invokes run over [lo, hi) in cancelSlice-sized sub-ranges,
// polling ctx between them; sub-ranges are visited in ascending index
// order, so the appended output is identical to one run(lo, hi) call.
// Returns false as soon as ctx is canceled.
func runSliced(ctx context.Context, lo, hi int, out *[]Candidate, run func(lo, hi int, out []Candidate) []Candidate) bool {
	for lo < hi {
		if ctx.Err() != nil {
			return false
		}
		end := min(lo+cancelSlice, hi)
		*out = run(lo, end, *out)
		lo = end
	}
	return true
}

// rankChunks runs the chunked scoring loop shared by the per-entry and
// batch scorers: run(lo, hi, out) scores index range [lo, hi) appending
// accepted candidates in index order. Parallel chunks are merged in
// chunk order before the deterministic top-k selection, so every
// (workers, chunking, ctx) configuration returns identical rankings.
// A nil ctx (the plain TopK path) adds no per-candidate cost; a
// canceled non-nil ctx aborts the scan and returns ctx's error.
func (g *engine) rankChunks(ctx context.Context, n, workers, k int, run func(lo, hi int, out []Candidate) []Candidate) ([]Candidate, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // context.Background etc: not cancelable, skip the polling
	}
	bufp := candPool.Get().(*[]Candidate)
	buf := (*bufp)[:0]
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < minParallel {
		if ctx == nil {
			buf = run(0, n, buf)
		} else if !runSliced(ctx, 0, n, &buf, run) {
			*bufp = buf
			putCandBuf(bufp)
			return nil, ctx.Err()
		}
	} else {
		if workers > n {
			workers = n
		}
		chunk := (n + workers - 1) / workers
		parts := make([]*[]Candidate, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bp := candPool.Get().(*[]Candidate)
				*bp = (*bp)[:0]
				if ctx == nil {
					*bp = run(lo, hi, *bp)
				} else {
					runSliced(ctx, lo, hi, bp, run)
				}
				parts[w] = bp
			}(w, lo, hi)
		}
		wg.Wait()
		for _, bp := range parts {
			if bp == nil {
				continue
			}
			buf = append(buf, *bp...)
			putCandBuf(bp)
		}
		if ctx != nil && ctx.Err() != nil {
			*bufp = buf
			putCandBuf(bufp)
			return nil, ctx.Err()
		}
	}
	res := topK(buf, k)
	*bufp = buf
	putCandBuf(bufp)
	return res, nil
}

// topK ranks candidates best-first and returns a copy of the leading
// k, leaving cands free for reuse. For large accepted sets it selects
// instead of sorting: one insertion pass through a k-sized ordered
// buffer under the same total order as sortCandidates, so the result
// is identical to sort-then-truncate.
func topK(cands []Candidate, k int) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	if len(cands) <= k {
		out := append(make([]Candidate, 0, len(cands)), cands...)
		sortCandidates(out)
		return out
	}
	best := make([]Candidate, 0, k+1)
	for _, c := range cands {
		if len(best) == k && !rankBefore(c, best[k-1]) {
			continue
		}
		best = append(best, c)
		for i := len(best) - 1; i > 0 && rankBefore(best[i], best[i-1]); i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	return best
}
