package fpstalker

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fpdyn/internal/hashutil"
	"fpdyn/internal/useragent"
)

// The matching engine: what turns the paper's Figure 9 linear scan into
// something a production linker can live with. Two independent levers,
// each with an ablation flag so the paper's measurement stays
// reproducible:
//
//   - candidate blocking ("Guess Who?"-style pre-filtering): entries are
//     bucketed by the identity attributes the linking rules require to
//     match exactly, so a query only ever scores entries its rules could
//     accept. Disabled by NoBlocking (the Figure 9 configuration).
//   - a worker-pool parallel scorer, chunked over the candidate set.
//     Serial when Workers == 1 or the candidate set is small.
//
// Both levers are pure optimizations: the per-entry scoring functions
// remain the complete filters, so blocked/parallel runs return exactly
// the rankings of the serial linear scan (sortCandidates' total order —
// score descending, then ID — is deterministic, and instance IDs are
// unique).

// blockKey buckets parsed entries by the attributes the rule-based
// linker requires to be equal: browser family, OS family and form
// factor (rule 2) plus the user-controlled storage toggles (rule 4).
// Every component is an exact-equality constraint of the rule cascade,
// so the bucket contains a superset of what score accepts.
type blockKey struct {
	browser      string
	os           string
	mobile       bool
	cookie       bool
	localStorage bool
}

// famKey is the coarser learning-variant bucket: its prefilter
// constrains browser family and form factor but not OS.
type famKey struct {
	browser string
	mobile  bool
}

// engine is the shared storage and candidate-generation core behind
// both linkers: an RWMutex-guarded entry table plus the blocking
// indexes. The mutex makes Add/TopK safe for concurrent callers, the
// same contract internal/storage gives the collection server.
type engine struct {
	mu      sync.RWMutex
	entries []*entry
	byID    map[string]int // instance id → index in entries

	blocks   map[blockKey][]int // parsed entries by (browser, OS, mobile)
	fams     map[famKey][]int   // parsed entries by (browser, mobile)
	raw      map[string][]int   // unparsed entries by verbatim UA string
	unparsed []int              // every unparsed entry index
}

func newEngine() *engine {
	return &engine{
		byID:   make(map[string]int),
		blocks: make(map[blockKey][]int),
		fams:   make(map[famKey][]int),
		raw:    make(map[string][]int),
	}
}

func (g *engine) size() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// add registers e as the latest fingerprint of id, replacing the
// instance's previous entry in place (indexes stay stable). It returns
// the entry's table index and the displaced entry, nil for a brand-new
// instance. Callers must hold mu.
func (g *engine) add(id string, e *entry) (int, *entry) {
	if i, ok := g.byID[id]; ok {
		old := g.entries[i]
		g.entries[i] = e
		g.unindex(old, i)
		g.index(e, i)
		return i, old
	}
	g.entries = append(g.entries, e)
	i := len(g.entries) - 1
	g.byID[id] = i
	g.index(e, i)
	return i, nil
}

// remove deletes id's entry from the table and every blocking
// structure. The vacated slot is filled by swap-moving the last entry
// down, so the table stays dense; the moved entry (nil if the removed
// one was last) is returned along with its new index so callers that
// keep side indexes over table positions (the rule linker's exact-match
// hash index) can re-point them. Callers must hold mu.
func (g *engine) remove(id string) (removed, moved *entry, movedTo int) {
	i, ok := g.byID[id]
	if !ok {
		return nil, nil, 0
	}
	e := g.entries[i]
	g.unindex(e, i)
	delete(g.byID, id)
	last := len(g.entries) - 1
	if i != last {
		m := g.entries[last]
		g.entries[i] = m
		g.byID[m.id] = i
		// Re-point every blocking bucket holding the moved entry from
		// its old slot to its new one.
		g.unindex(m, last)
		g.index(m, i)
		moved, movedTo = m, i
	}
	g.entries[last] = nil // release the entry for GC
	g.entries = g.entries[:last]
	return e, moved, movedTo
}

// indexDigest is a canonical SHA-1 over the entry table and every
// blocking structure: entries sorted by instance ID with their
// fingerprint hash and timestamp, then each bucket rendered as its key
// plus the sorted member IDs. Bucket *order* is deliberately excluded —
// swap-deletes reorder buckets without changing rankings — so a
// recovered engine that replayed the same adds and evictions digests
// identically to one that never crashed. Callers must hold mu (read
// side suffices).
func (g *engine) indexDigest() string {
	var lines []string
	for id, i := range g.byID {
		e := g.entries[i]
		lines = append(lines, fmt.Sprintf("entry %s %016x %d %t",
			id, e.rec.FP.Hash(false), e.rec.Time.UnixNano(), e.ok))
	}
	for k, bucket := range g.blocks {
		lines = append(lines, "block "+fmt.Sprintf("%s|%s|%t|%t|%t", k.browser, k.os, k.mobile, k.cookie, k.localStorage)+bucketIDs(g, bucket))
	}
	for k, bucket := range g.fams {
		lines = append(lines, "fam "+fmt.Sprintf("%s|%t", k.browser, k.mobile)+bucketIDs(g, bucket))
	}
	for ua, bucket := range g.raw {
		lines = append(lines, "raw "+ua+bucketIDs(g, bucket))
	}
	lines = append(lines, "unparsed"+bucketIDs(g, g.unparsed))
	sort.Strings(lines)
	var b []byte
	for _, l := range lines {
		b = append(b, l...)
		b = append(b, '\n')
	}
	return hashutil.SHA1HexBytes(b)
}

// bucketIDs renders a bucket's member instance IDs, sorted.
func bucketIDs(g *engine, bucket []int) string {
	ids := make([]string, len(bucket))
	for j, i := range bucket {
		ids[j] = g.entries[i].id
	}
	sort.Strings(ids)
	var b []byte
	for _, id := range ids {
		b = append(b, ' ')
		b = append(b, id...)
	}
	return string(b)
}

// entryBlockKey is the rule-variant bucket of a parsed entry.
func entryBlockKey(e *entry) blockKey {
	return blockKey{e.ua.Browser, e.ua.OS, e.ua.Mobile,
		e.rec.FP.CookieEnabled, e.rec.FP.LocalStorage}
}

func (g *engine) index(e *entry, i int) {
	if e.ok {
		bk := entryBlockKey(e)
		g.blocks[bk] = append(g.blocks[bk], i)
		fk := famKey{e.ua.Browser, e.ua.Mobile}
		g.fams[fk] = append(g.fams[fk], i)
		return
	}
	g.raw[e.rec.FP.UserAgent] = append(g.raw[e.rec.FP.UserAgent], i)
	g.unparsed = append(g.unparsed, i)
}

func (g *engine) unindex(e *entry, i int) {
	if e.ok {
		removeFromBucket(g.blocks, entryBlockKey(e), i)
		removeFromBucket(g.fams, famKey{e.ua.Browser, e.ua.Mobile}, i)
		return
	}
	removeFromBucket(g.raw, e.rec.FP.UserAgent, i)
	for j, v := range g.unparsed {
		if v == i {
			g.unparsed[j] = g.unparsed[len(g.unparsed)-1]
			g.unparsed = g.unparsed[:len(g.unparsed)-1]
			break
		}
	}
}

// removeFromBucket swap-deletes index i from m[k], dropping the key
// when its bucket empties.
func removeFromBucket[K comparable](m map[K][]int, k K, i int) {
	s := m[k]
	for j, v := range s {
		if v == i {
			s[j] = s[len(s)-1]
			s = s[:len(s)-1]
			break
		}
	}
	if len(s) == 0 {
		delete(m, k)
	} else {
		m[k] = s
	}
}

// ruleCandidates generates the candidate set for the rule-based linker.
// A parsed query can only link inside its (browser, OS, mobile,
// storage toggles) bucket (rules 2 and 4). An unparseable query
// requires a verbatim UA match, which only an unparsed entry of the
// same string can satisfy — an identical string would have parsed
// identically. all=true means "scan every entry" (the NoBlocking
// ablation). Callers must hold mu.
func (g *engine) ruleCandidates(q *entry, noBlocking bool) (cand []int, all bool) {
	if noBlocking {
		return nil, true
	}
	if q.ok {
		return g.blocks[entryBlockKey(q)], false
	}
	return g.raw[q.rec.FP.UserAgent], false
}

// learnCandidates generates the candidate set for the learning-based
// linker: its prefilter only fires when both sides parse, so a parsed
// query faces its (browser, mobile) bucket plus every unparsed entry,
// and an unparseable query faces the whole table. Callers must hold mu.
func (g *engine) learnCandidates(qUA useragent.UA, qOK bool, noBlocking bool) (cand []int, all bool) {
	if noBlocking || !qOK {
		return nil, true
	}
	bucket := g.fams[famKey{qUA.Browser, qUA.Mobile}]
	if len(g.unparsed) == 0 {
		return bucket, false
	}
	cand = make([]int, 0, len(bucket)+len(g.unparsed))
	cand = append(append(cand, bucket...), g.unparsed...)
	return cand, false
}

// minParallel is the candidate count below which scoring stays serial:
// spawning the pool costs more than scanning a small bucket.
const minParallel = 256

// candPool recycles the scoring scratch buffers. A query over a large
// bucket accepts hundreds of candidates; building that slice fresh per
// TopK made the matching engine an allocation hot spot (and, against
// the dataset-sized live heap, a GC hot spot). Only the ≤ k ranked
// results are copied out to the caller.
var candPool = sync.Pool{New: func() any { return new([]Candidate) }}

// scoreTopK applies score to each candidate entry (the whole table when
// all is set), ranks the accepted ones best-first and returns the top
// k as a fresh slice. workers ≤ 0 sizes the pool to GOMAXPROCS;
// workers == 1 or a small candidate set keeps it serial. Parallel
// chunks are merged before the deterministic sort, so blocked,
// parallel and serial runs return identical rankings. A non-nil ctx is
// polled between cancelSlice-sized index ranges: a canceled query
// stops scoring mid-scan and returns ctx's error instead of burning
// CPU on an answer nobody is waiting for. Callers must hold mu (read
// side suffices: scoring never mutates the table).
func (g *engine) scoreTopK(ctx context.Context, cand []int, all bool, workers, k int, score func(*entry) (float64, bool)) ([]Candidate, error) {
	at, n := g.candAt(cand, all)
	return g.rankChunks(ctx, n, workers, k, func(lo, hi int, out []Candidate) []Candidate {
		for j := lo; j < hi; j++ {
			e := at(j)
			if s, ok := score(e); ok {
				out = append(out, Candidate{ID: e.id, Score: s})
			}
		}
		return out
	})
}

// scoreBlock is the candidate-block size the batch scorers work in:
// large enough that a batch forest pass amortizes its per-block setup,
// small enough that a block of pair vectors stays cache-resident.
const scoreBlock = 256

// blockPool recycles the per-block entry gather buffers of
// scoreTopKBatch.
var blockPool = sync.Pool{New: func() any {
	b := make([]*entry, 0, scoreBlock)
	return &b
}}

// scoreTopKBatch is scoreTopK for scorers that evaluate candidates a
// block at a time (the learning linker's batch forest kernel): score
// receives up to scoreBlock entries and appends the accepted ones to
// out, preserving block order, so the merged ranking is identical to
// the per-entry path. Callers must hold mu.
func (g *engine) scoreTopKBatch(ctx context.Context, cand []int, all bool, workers, k int, score func(es []*entry, out []Candidate) []Candidate) ([]Candidate, error) {
	at, n := g.candAt(cand, all)
	return g.rankChunks(ctx, n, workers, k, func(lo, hi int, out []Candidate) []Candidate {
		bp := blockPool.Get().(*[]*entry)
		block := *bp
		for lo < hi {
			end := min(lo+scoreBlock, hi)
			block = block[:0]
			for j := lo; j < end; j++ {
				block = append(block, at(j))
			}
			out = score(block, out)
			lo = end
		}
		*bp = block[:0]
		blockPool.Put(bp)
		return out
	})
}

// candAt resolves the candidate indirection: an accessor over either
// the explicit candidate list or the whole table, plus its length.
func (g *engine) candAt(cand []int, all bool) (at func(int) *entry, n int) {
	if all {
		return func(j int) *entry { return g.entries[j] }, len(g.entries)
	}
	return func(j int) *entry { return g.entries[cand[j]] }, len(cand)
}

// cancelSlice is the index-range granularity at which a ctx-carrying
// query polls for cancellation: coarse enough that the poll (one atomic
// read inside ctx.Err) vanishes against scoring 4096 candidates, fine
// enough that a timed-out scan over a million-entry bucket stops within
// a fraction of a millisecond of the deadline. A multiple of scoreBlock
// so slicing never splits a batch block.
const cancelSlice = 4096

// runSliced invokes run over [lo, hi) in cancelSlice-sized sub-ranges,
// polling ctx between them; sub-ranges are visited in ascending index
// order, so the appended output is identical to one run(lo, hi) call.
// Returns false as soon as ctx is canceled.
func runSliced(ctx context.Context, lo, hi int, out *[]Candidate, run func(lo, hi int, out []Candidate) []Candidate) bool {
	for lo < hi {
		if ctx.Err() != nil {
			return false
		}
		end := min(lo+cancelSlice, hi)
		*out = run(lo, end, *out)
		lo = end
	}
	return true
}

// rankChunks runs the chunked scoring loop shared by the per-entry and
// batch scorers: run(lo, hi, out) scores index range [lo, hi) appending
// accepted candidates in index order. Parallel chunks are merged in
// chunk order before the deterministic top-k selection, so every
// (workers, chunking, ctx) configuration returns identical rankings.
// A nil ctx (the plain TopK path) adds no per-candidate cost; a
// canceled non-nil ctx aborts the scan and returns ctx's error.
func (g *engine) rankChunks(ctx context.Context, n, workers, k int, run func(lo, hi int, out []Candidate) []Candidate) ([]Candidate, error) {
	if ctx != nil && ctx.Done() == nil {
		ctx = nil // context.Background etc: not cancelable, skip the polling
	}
	bufp := candPool.Get().(*[]Candidate)
	buf := (*bufp)[:0]
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < minParallel {
		if ctx == nil {
			buf = run(0, n, buf)
		} else if !runSliced(ctx, 0, n, &buf, run) {
			*bufp = buf[:0]
			candPool.Put(bufp)
			return nil, ctx.Err()
		}
	} else {
		if workers > n {
			workers = n
		}
		chunk := (n + workers - 1) / workers
		parts := make([]*[]Candidate, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, n)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bp := candPool.Get().(*[]Candidate)
				*bp = (*bp)[:0]
				if ctx == nil {
					*bp = run(lo, hi, *bp)
				} else {
					runSliced(ctx, lo, hi, bp, run)
				}
				parts[w] = bp
			}(w, lo, hi)
		}
		wg.Wait()
		for _, bp := range parts {
			if bp == nil {
				continue
			}
			buf = append(buf, *bp...)
			*bp = (*bp)[:0]
			candPool.Put(bp)
		}
		if ctx != nil && ctx.Err() != nil {
			*bufp = buf[:0]
			candPool.Put(bufp)
			return nil, ctx.Err()
		}
	}
	res := topK(buf, k)
	*bufp = buf[:0]
	candPool.Put(bufp)
	return res, nil
}

// topK ranks candidates best-first and returns a copy of the leading
// k, leaving cands free for reuse. For large accepted sets it selects
// instead of sorting: one insertion pass through a k-sized ordered
// buffer under the same total order as sortCandidates, so the result
// is identical to sort-then-truncate.
func topK(cands []Candidate, k int) []Candidate {
	if len(cands) == 0 {
		return nil
	}
	if len(cands) <= k {
		out := append(make([]Candidate, 0, len(cands)), cands...)
		sortCandidates(out)
		return out
	}
	best := make([]Candidate, 0, k+1)
	for _, c := range cands {
		if len(best) == k && !rankBefore(c, best[k-1]) {
			continue
		}
		best = append(best, c)
		for i := len(best) - 1; i > 0 && rankBefore(best[i], best[i-1]); i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	return best
}
