// Package canvas is the rendering substrate of the reproduction.
//
// The paper's fingerprinting tool draws a text+emoji string ("Cwm
// fjordbank glyphs vext quiz, 😂") onto an HTML canvas and a three.js
// scene onto a WebGL canvas, then fingerprints the pixel output. We do
// not have a browser, so this package implements the closest synthetic
// equivalent: a deterministic software rasterizer whose pixel output is
// a pure function of the parameters that real canvases depend on —
//
//   - the text rasterizer generation (glyph shapes: "text detail"),
//   - the advance-width generation (how wide the text renders: "text width"),
//   - the emoji design generation ("emoji type", e.g. a redesigned smiley),
//   - the emoji rendering generation ("emoji rendering", e.g. smoothing),
//   - and, for GPU images, the GPU vendor/renderer/driver.
//
// These four text/emoji axes are exactly the four canvas-dynamics
// subtypes of the paper's Table 3. A version bump on any axis changes
// the pixels (and therefore the canvas hash) in a characteristic way, so
// the diff/classification pipeline downstream exercises the same logic
// it would on real canvas data, including the Figure 8 pixel diff.
package canvas

import (
	"fmt"

	"fpdyn/internal/hashutil"
)

// Canvas geometry. The text band occupies columns [0, TextBandWidth);
// the emoji glyph occupies the trailing EmojiBandWidth columns.
const (
	Width          = 120
	Height         = 20
	EmojiBandWidth = 20
	TextBandWidth  = Width - EmojiBandWidth
)

// Params are the rendering-relevant parameters of a browser environment.
// The population simulator derives them from the browser, OS and
// co-installed software versions (e.g. a Samsung Browser 6.2 install
// bumps EmojiMajor for every browser on the device, reproducing the
// paper's Insight 1.1).
type Params struct {
	TextEngine int // glyph-shape generation (changes "text detail")
	TextWidth  int // advance-width generation (changes "text width")
	EmojiMajor int // emoji design generation (changes "emoji type")
	EmojiMinor int // emoji smoothing generation (changes "emoji rendering")
}

// Image is a rasterized grayscale canvas. The zero value is an empty
// (all-background) canvas ready to use.
type Image struct {
	Pix [Height][Width]byte
}

// Render rasterizes the study's canvas test string under the given
// parameters. The output is deterministic: equal Params always produce
// bit-identical images.
func Render(p Params) *Image {
	img := &Image{}
	renderText(img, p)
	renderEmoji(img, p)
	return img
}

// textWidth returns the rendered width in columns of the text band for a
// given advance-width generation. Different generations shift the width
// by a few columns, like a font metrics change does.
func textWidth(gen int) int {
	base := TextBandWidth - 8
	return base + int(hashutil.HashStrings("tw", itoa(gen))%8)
}

func renderText(img *Image, p Params) {
	w := textWidth(p.TextWidth)
	seed := hashutil.HashStrings("text", itoa(p.TextEngine))
	for y := 0; y < Height; y++ {
		for x := 0; x < w; x++ {
			// Glyph coverage: a deterministic dither pattern from the
			// engine generation. Roughly 45% ink coverage.
			h := hashutil.Combine(seed, uint64(y)<<16|uint64(x))
			if h%100 < 45 {
				img.Pix[y][x] = byte(80 + h%160)
			}
		}
	}
}

func renderEmoji(img *Image, p Params) {
	// The emoji glyph: coarse 4x4 blocks controlled by the design
	// generation (a redesign moves/recolors whole blocks), plus
	// per-pixel jitter controlled by the smoothing generation.
	design := hashutil.HashStrings("emoji-design", itoa(p.EmojiMajor))
	smooth := hashutil.HashStrings("emoji-smooth", itoa(p.EmojiMajor), itoa(p.EmojiMinor))
	for y := 0; y < Height; y++ {
		for x := TextBandWidth; x < Width; x++ {
			bx, by := (x-TextBandWidth)/4, y/4
			blockH := hashutil.Combine(design, uint64(by)<<8|uint64(bx))
			if blockH%10 < 6 { // block is part of the glyph
				body := hashutil.Combine(design, uint64(y)<<16|uint64(x))
				img.Pix[y][x] = byte(150 + body%100)
				// A sparse anti-aliasing mask (~1 pixel in 7) carries the
				// smoothing generation: a "rendering" update perturbs only
				// these pixels, far fewer than a redesign moves.
				if body%7 == 0 {
					jitter := hashutil.Combine(smooth, uint64(y)<<16|uint64(x))
					img.Pix[y][x] = byte(150 + jitter%100)
				}
			}
		}
	}
}

// Hash returns the canvas fingerprint: the hex SHA-1 of the pixel
// buffer, matching the 40-hex-character canvas hashes the paper reports
// (Appendix A.2).
func (img *Image) Hash() string {
	flat := make([]byte, 0, Width*Height)
	for y := 0; y < Height; y++ {
		flat = append(flat, img.Pix[y][:]...)
	}
	return hashutil.SHA1HexBytes(flat)
}

// RenderHash is a convenience for Render(p).Hash() that avoids exposing
// the pixels when only the fingerprint value is needed.
func RenderHash(p Params) string { return Render(p).Hash() }

// GPUInfo identifies a graphics stack for GPU-image rendering.
type GPUInfo struct {
	Vendor   string // e.g. "NVIDIA Corporation"
	Renderer string // e.g. "GeForce GTX 970"
	Driver   int    // driver/DirectX generation
}

// RenderGPU rasterizes the three.js-style GPU test scene. Dedicated GPUs
// render with high per-renderer variation (they pursue quality through
// distinctive shader paths), while integrated GPUs cluster: this
// asymmetry is what makes the paper's Insight 1.3 inference accuracy
// high for NVIDIA/Mali/PowerVR and low for Intel/AMD. We reproduce it by
// giving integrated vendors a shared base pattern with only small
// per-renderer perturbation.
func RenderGPU(g GPUInfo) *Image {
	img := &Image{}
	integrated := g.Vendor == "Intel Inc." || g.Vendor == "AMD"
	var seed uint64
	if integrated {
		// Integrated GPUs render through shared driver paths: renderers
		// collapse into a small number of output classes per vendor, so
		// distinct renderers often produce bit-identical images — the
		// reason the paper's inference accuracy is low for Intel/AMD.
		bucket := int(hashutil.Hash64(g.Renderer) % 2)
		vendorSeed := hashutil.HashStrings("gpu", g.Vendor, itoa(g.Driver))
		classSeed := hashutil.HashStrings("gpu", g.Vendor, itoa(bucket), itoa(g.Driver))
		for y := 0; y < Height; y++ {
			for x := 0; x < Width; x++ {
				seed = vendorSeed
				if x%8 == 0 {
					seed = classSeed
				}
				h := hashutil.Combine(seed, uint64(y)<<16|uint64(x))
				img.Pix[y][x] = byte(h % 256)
			}
		}
		return img
	}
	seed = hashutil.HashStrings("gpu", g.Vendor, g.Renderer, itoa(g.Driver))
	for y := 0; y < Height; y++ {
		for x := 0; x < Width; x++ {
			h := hashutil.Combine(seed, uint64(y)<<16|uint64(x))
			img.Pix[y][x] = byte(h % 256)
		}
	}
	return img
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
