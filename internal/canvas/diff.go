package canvas

// PixelDiff is the result of comparing two rendered canvases pixel by
// pixel. The paper's dataset pipeline stores canvas dynamics only as a
// hash pair (§2.3.2 argues pixel diffs are heavyweight and carry little
// linkable information), but the *analysis* sections use pixel diffs to
// attribute a canvas change to one of four subtypes (Table 3) and to
// produce the Figure 8 emoji comparison. This type supports both.
type PixelDiff struct {
	Changed      int  // total changed pixels
	TextChanged  int  // changed pixels inside the text band
	EmojiChanged int  // changed pixels inside the emoji band
	WidthDelta   int  // rendered text width difference in columns
	Identical    bool // true when the two images are bit-identical
}

// Subtype labels for canvas dynamics, following Table 3's terminology.
type Subtype string

const (
	// SubtypeNone means the canvases are identical.
	SubtypeNone Subtype = "none"
	// SubtypeTextWidth: the width of the rendered text changed.
	SubtypeTextWidth Subtype = "text width"
	// SubtypeTextDetail: glyph texture details changed at equal width.
	SubtypeTextDetail Subtype = "text detail"
	// SubtypeEmojiType: a new emoji design (large emoji-band change).
	SubtypeEmojiType Subtype = "emoji type"
	// SubtypeEmojiRendering: subtle emoji rendering change (smoothing).
	SubtypeEmojiRendering Subtype = "emoji rendering"
)

// Diff compares two canvases pixel by pixel.
func Diff(a, b *Image) PixelDiff {
	var d PixelDiff
	for y := 0; y < Height; y++ {
		for x := 0; x < Width; x++ {
			if a.Pix[y][x] != b.Pix[y][x] {
				d.Changed++
				if x < TextBandWidth {
					d.TextChanged++
				} else {
					d.EmojiChanged++
				}
			}
		}
	}
	d.WidthDelta = measuredWidth(b) - measuredWidth(a)
	d.Identical = d.Changed == 0
	return d
}

// measuredWidth finds the rightmost inked column of the text band, i.e.
// the rendered text width an observer would measure.
func measuredWidth(img *Image) int {
	for x := TextBandWidth - 1; x >= 0; x-- {
		for y := 0; y < Height; y++ {
			if img.Pix[y][x] != 0 {
				return x + 1
			}
		}
	}
	return 0
}

// emojiTypeThreshold separates a design change (whole blocks move) from
// a rendering change (per-pixel jitter only). A block redesign flips
// block membership for ~half the band; smoothing changes intensities of
// already-inked pixels only.
const emojiTypeThreshold = Height * EmojiBandWidth / 4

// Subtypes classifies a pixel diff into the Table 3 canvas-dynamics
// subtypes. A single update can exhibit several at once (e.g. Samsung
// 6→7 changes both text width and emoji rendering), so a slice is
// returned; it is empty when the images are identical.
func (d PixelDiff) Subtypes() []Subtype {
	if d.Identical {
		return nil
	}
	var out []Subtype
	if d.WidthDelta != 0 {
		out = append(out, SubtypeTextWidth)
	} else if d.TextChanged > 0 {
		out = append(out, SubtypeTextDetail)
	}
	if d.EmojiChanged >= emojiTypeThreshold {
		out = append(out, SubtypeEmojiType)
	} else if d.EmojiChanged > 0 {
		out = append(out, SubtypeEmojiRendering)
	}
	return out
}

// EmojiOnly reports whether the change is confined to the emoji band,
// the signature of a pure emoji update (the paper: 87.6% of canvas
// dynamics are emoji-caused).
func (d PixelDiff) EmojiOnly() bool {
	return !d.Identical && d.TextChanged == 0 && d.EmojiChanged > 0
}
