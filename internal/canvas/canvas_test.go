package canvas

import (
	"testing"
	"testing/quick"
)

func TestRenderDeterministic(t *testing.T) {
	p := Params{TextEngine: 3, TextWidth: 2, EmojiMajor: 5, EmojiMinor: 1}
	if Render(p).Hash() != Render(p).Hash() {
		t.Fatal("Render is not deterministic")
	}
}

func TestHashFormat(t *testing.T) {
	h := RenderHash(Params{})
	if len(h) != 40 {
		t.Fatalf("canvas hash length = %d, want 40 (SHA-1 hex)", len(h))
	}
}

func TestEmojiMajorChangesEmojiBandOnly(t *testing.T) {
	a := Render(Params{TextEngine: 1, TextWidth: 1, EmojiMajor: 1, EmojiMinor: 0})
	b := Render(Params{TextEngine: 1, TextWidth: 1, EmojiMajor: 2, EmojiMinor: 0})
	d := Diff(a, b)
	if d.TextChanged != 0 {
		t.Errorf("emoji update leaked into text band: %d pixels", d.TextChanged)
	}
	if !d.EmojiOnly() {
		t.Error("expected emoji-only diff")
	}
	subs := d.Subtypes()
	if len(subs) != 1 || subs[0] != SubtypeEmojiType {
		t.Errorf("subtypes = %v, want [emoji type]", subs)
	}
}

func TestEmojiMinorIsRenderingSubtype(t *testing.T) {
	a := Render(Params{EmojiMajor: 3, EmojiMinor: 0})
	b := Render(Params{EmojiMajor: 3, EmojiMinor: 1})
	d := Diff(a, b)
	if !d.EmojiOnly() {
		t.Fatal("smoothing change must be emoji-only")
	}
	subs := d.Subtypes()
	if len(subs) != 1 || subs[0] != SubtypeEmojiRendering {
		t.Errorf("subtypes = %v, want [emoji rendering]", subs)
	}
	// A smoothing change touches fewer pixels than a redesign.
	redesign := Diff(a, Render(Params{EmojiMajor: 4, EmojiMinor: 0}))
	if d.EmojiChanged >= redesign.EmojiChanged {
		t.Errorf("smoothing diff (%d px) should be smaller than redesign diff (%d px)",
			d.EmojiChanged, redesign.EmojiChanged)
	}
}

func TestTextWidthSubtype(t *testing.T) {
	// Find two width generations that actually differ in rendered width.
	base := Render(Params{TextEngine: 2, TextWidth: 0})
	for gen := 1; gen < 10; gen++ {
		b := Render(Params{TextEngine: 2, TextWidth: gen})
		d := Diff(base, b)
		if d.WidthDelta != 0 {
			subs := d.Subtypes()
			found := false
			for _, s := range subs {
				if s == SubtypeTextWidth {
					found = true
				}
			}
			if !found {
				t.Fatalf("width delta %d not classified as text width: %v", d.WidthDelta, subs)
			}
			return
		}
	}
	t.Fatal("no width generation produced a different text width")
}

func TestTextDetailSubtype(t *testing.T) {
	a := Render(Params{TextEngine: 1, TextWidth: 5})
	b := Render(Params{TextEngine: 2, TextWidth: 5})
	d := Diff(a, b)
	if d.TextChanged == 0 {
		t.Fatal("engine change must alter text pixels")
	}
	if d.WidthDelta != 0 {
		t.Skip("these generations also changed width; detail subtype untestable here")
	}
	subs := d.Subtypes()
	if len(subs) == 0 || subs[0] != SubtypeTextDetail {
		t.Errorf("subtypes = %v, want text detail first", subs)
	}
}

func TestIdenticalDiff(t *testing.T) {
	p := Params{TextEngine: 9, TextWidth: 9, EmojiMajor: 9, EmojiMinor: 9}
	d := Diff(Render(p), Render(p))
	if !d.Identical || d.Changed != 0 || len(d.Subtypes()) != 0 {
		t.Fatalf("identical render diff = %+v", d)
	}
}

func TestGPUDedicatedDistinctive(t *testing.T) {
	// Dedicated GPUs must produce images unique per renderer.
	a := RenderGPU(GPUInfo{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 970", Driver: 11})
	b := RenderGPU(GPUInfo{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 1060", Driver: 11})
	if a.Hash() == b.Hash() {
		t.Fatal("different dedicated renderers must differ")
	}
}

func TestGPUIntegratedClusters(t *testing.T) {
	// Integrated GPUs collapse into few output classes: among several
	// Intel renderers, at least two must produce bit-identical images
	// (which is what defeats image→renderer inference for them), and
	// any Intel pair that does differ differs by less than a dedicated
	// NVIDIA pair.
	renderers := []string{
		"Intel(R) HD Graphics 520", "Intel(R) HD Graphics 620",
		"Intel(R) UHD Graphics 630", "Intel(R) HD Graphics 4000",
		"Intel(R) HD Graphics 530",
	}
	imgs := make([]*Image, len(renderers))
	for i, r := range renderers {
		imgs[i] = RenderGPU(GPUInfo{Vendor: "Intel Inc.", Renderer: r, Driver: 11})
	}
	collision := false
	maxIntelDiff := 0
	for i := 0; i < len(imgs); i++ {
		for j := i + 1; j < len(imgs); j++ {
			d := Diff(imgs[i], imgs[j]).Changed
			if d == 0 {
				collision = true
			} else if d > maxIntelDiff {
				maxIntelDiff = d
			}
		}
	}
	if !collision {
		t.Error("no identical-image collision among 5 Intel renderers")
	}
	n1 := RenderGPU(GPUInfo{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 970", Driver: 11})
	n2 := RenderGPU(GPUInfo{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 1060", Driver: 11})
	dn := Diff(n1, n2).Changed
	if maxIntelDiff*4 > dn {
		t.Errorf("integrated diff (%d) should be much smaller than dedicated diff (%d)", maxIntelDiff, dn)
	}
}

func TestGPUDriverChangesImage(t *testing.T) {
	// A DirectX/driver update changes the GPU image (Insight 3 example 3).
	a := RenderGPU(GPUInfo{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 970", Driver: 9})
	b := RenderGPU(GPUInfo{Vendor: "NVIDIA Corporation", Renderer: "GeForce GTX 970", Driver: 11})
	if a.Hash() == b.Hash() {
		t.Fatal("driver generation must affect the GPU image")
	}
}

// Property: the diff of any two renders is symmetric in Changed counts
// and the width delta negates.
func TestDiffSymmetryProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		p := Params{TextEngine: int(a1 % 8), TextWidth: int(a2 % 8), EmojiMajor: int(b1 % 8), EmojiMinor: int(b2 % 8)}
		q := Params{TextEngine: int(a2 % 8), TextWidth: int(b1 % 8), EmojiMajor: int(b2 % 8), EmojiMinor: int(a1 % 8)}
		x, y := Render(p), Render(q)
		d1, d2 := Diff(x, y), Diff(y, x)
		return d1.Changed == d2.Changed && d1.WidthDelta == -d2.WidthDelta &&
			d1.TextChanged == d2.TextChanged && d1.EmojiChanged == d2.EmojiChanged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal params render to equal hashes; the hash is a pure
// function of Params.
func TestRenderPureProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := Params{int(a), int(b), int(c), int(d)}
		return RenderHash(p) == RenderHash(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRender(b *testing.B) {
	p := Params{TextEngine: 3, TextWidth: 2, EmojiMajor: 5, EmojiMinor: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Render(p)
	}
}

func BenchmarkDiff(b *testing.B) {
	x := Render(Params{EmojiMajor: 1})
	y := Render(Params{EmojiMajor: 2})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Diff(x, y)
	}
}

func BenchmarkHashPairVsPixelDiff(b *testing.B) {
	// Ablation for §2.3.2: comparing canvases by hash pair vs by pixel
	// diff. The paper chose hash pairs for speed; quantify the gap.
	x := Render(Params{EmojiMajor: 1})
	y := Render(Params{EmojiMajor: 2})
	b.Run("hash-pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.Hash() != y.Hash()
		}
	})
	b.Run("pixel-diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Diff(x, y).Changed > 0
		}
	})
}
