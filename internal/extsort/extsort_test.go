package extsort

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"fpdyn/internal/faultinject"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// intSorter builds a Sorter[int] over a test directory.
func intSorter(t *testing.T, maxRun int, reg *obs.Registry) *Sorter[int] {
	t.Helper()
	s, err := New(Options[int]{
		Dir:         filepath.Join(t.TempDir(), "spill"),
		Less:        func(a, b int) bool { return a < b },
		Encode:      func(dst []byte, v int) ([]byte, error) { return strconv.AppendInt(dst, int64(v), 10), nil },
		Decode:      func(p []byte) (int, error) { return strconv.Atoi(string(p)) },
		MaxRunItems: maxRun,
		Registry:    reg,
		Name:        "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func drain(t *testing.T, st *Stream[int]) []int {
	t.Helper()
	var out []int
	for {
		v, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestPushMergeSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := intSorter(t, 64, nil)
	defer s.Close()
	var want []int
	for i := 0; i < 1000; i++ {
		v := rng.Intn(10000)
		want = append(want, v)
		if err := s.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	sort.Ints(want)
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := drain(t, st)
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if s.Runs() < 10 {
		t.Fatalf("expected many runs at MaxRunItems=64, got %d", s.Runs())
	}
	if s.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count())
	}
}

// TestMergeRestream asserts Merge can be called repeatedly and replays
// the identical sequence — the contract the two-pass ground-truth
// build depends on.
func TestMergeRestream(t *testing.T) {
	s := intSorter(t, 16, nil)
	defer s.Close()
	for i := 100; i > 0; i-- {
		if err := s.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	st1, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	first := drain(t, st1)
	st1.Close()
	st2, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	second := drain(t, st2)
	st2.Close()
	if len(first) != 100 || len(second) != 100 {
		t.Fatalf("lengths %d, %d; want 100", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("restream diverged at %d: %d vs %d", i, first[i], second[i])
		}
	}
	if err := s.Push(1); err == nil {
		t.Fatal("Push after Merge should fail")
	}
}

// TestWriteRunPresorted exercises the direct run-writer path the
// simulator uses: per-batch sorted runs, merged across runs.
func TestWriteRunPresorted(t *testing.T) {
	s := intSorter(t, 0, nil)
	defer s.Close()
	if err := s.WriteRun([]int{1, 4, 7, 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun([]int{2, 3, 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun([]int{0, 5, 6, 9}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got := drain(t, st)
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d: got %d", i, v)
		}
	}
}

// TestTornRunFails truncates a run file mid-frame: the merge must
// surface a torn-frame error instead of silently dropping the tail.
func TestTornRunFails(t *testing.T) {
	s := intSorter(t, 0, nil)
	defer s.Close()
	big := make([]int, 200)
	for i := range big {
		big[i] = i * 3
	}
	if err := s.WriteRun(big); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.opts.Dir, "run-000000.seg")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sawErr := false
	for {
		_, ok, err := st.Next()
		if err != nil {
			if !errors.Is(err, storage.ErrTornFrame) {
				t.Fatalf("want ErrTornFrame, got %v", err)
			}
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("truncated run merged without error")
	}
}

// TestCorruptRunFails flips a payload byte: checksum error, not bad data.
func TestCorruptRunFails(t *testing.T) {
	s := intSorter(t, 0, nil)
	defer s.Close()
	if err := s.WriteRun([]int{11111, 22222, 33333}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.opts.Dir, "run-000000.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xFF // inside the first payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := s.Merge()
	if err == nil {
		// The first advance happens inside Merge; depending on which
		// frame is hit the error can surface on Next instead.
		_, _, err = st.Next()
		st.Close()
	}
	if !errors.Is(err, storage.ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

// TestSpillWriteFault scripts a write failure through faultinject: the
// spill must fail loudly, not produce a short run.
func TestSpillWriteFault(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options[int]{
		Dir:    filepath.Join(dir, "spill"),
		Less:   func(a, b int) bool { return a < b },
		Encode: func(dst []byte, v int) ([]byte, error) { return strconv.AppendInt(dst, int64(v), 10), nil },
		Decode: func(p []byte) (int, error) { return strconv.Atoi(string(p)) },
		OpenFile: func(path string) (storage.SegmentFile, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return &faultinject.File{F: f, Script: &faultinject.Script{FailAfter: 10}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	if err := s.WriteRun(items); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected write error, got %v", err)
	}
	if s.Runs() != 0 {
		t.Fatalf("failed run was recorded: %d runs", s.Runs())
	}
}

// TestMetrics checks the obs wiring: runs, bytes, items and the heap
// gauge move as the sorter works.
func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := intSorter(t, 8, reg)
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	key := func(name string) string { return fmt.Sprintf("%s{sort=%q}", name, "test") }
	if got := snap.Counters[key("extsort_items_total")]; got != 50 {
		t.Fatalf("items counter = %d, want 50", got)
	}
	if got := snap.Counters[key("extsort_runs_total")]; got < 6 {
		t.Fatalf("runs counter = %d, want >= 6", got)
	}
	if got := snap.Gauges[key("extsort_merge_heap_size")]; got <= 0 {
		t.Fatalf("heap gauge = %v, want > 0", got)
	}
	drain(t, st)
	st.Close()
	snap = reg.Snapshot()
	if got := snap.Gauges[key("extsort_merge_heap_size")]; got != 0 {
		t.Fatalf("heap gauge after drain = %v, want 0", got)
	}
}
