// Package extsort is the out-of-core sorting substrate of the
// streaming pipeline: bounded-memory external sort via spilled, sorted,
// CRC-framed run files and a k-way heap merge. The paper's dataset is
// 7.2M fingerprints — far past what the in-memory pipeline holds — so
// the simulator and the analytic stages spill their intermediate record
// streams here and consume them back as iterators instead of slices.
//
// On-disk format: each run is a sequence of frames in the storage WAL
// framing (uint32 length | uint32 CRC-32C | payload, little endian —
// storage.AppendFrame / storage.ReadFrame), one encoded item per
// frame. A torn or corrupt frame is a hard error at merge time: spill
// files live for the duration of one pipeline run, so unlike the WAL
// there is no tail to truncate — losing records silently would corrupt
// every downstream statistic.
//
// Determinism: Merge yields items in exactly the order Less defines,
// with ties broken by run index (earlier run wins). Pipelines that need
// byte-identical output across partitionings must use a total order
// (the record streams key on (time, serial), which is unique).
package extsort

import (
	"bufio"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// Options configures a Sorter. Less, Encode and Decode are required;
// the zero value of everything else has a usable default.
type Options[T any] struct {
	// Dir is the spill directory; created if absent. Required.
	Dir string
	// Less is the sort order. It must be a total order for the merged
	// stream to be independent of how items were partitioned into runs.
	Less func(a, b T) bool
	// Encode appends the encoding of v to dst and returns the extended
	// slice (the append-style contract avoids per-item allocations).
	Encode func(dst []byte, v T) ([]byte, error)
	// Decode parses one encoded item. The payload slice is only valid
	// during the call.
	Decode func(payload []byte) (T, error)
	// MaxRunItems bounds the Push buffer: when it fills, the buffer is
	// sorted and spilled as one run (default 65536).
	MaxRunItems int
	// MaxFrame bounds a single encoded item (default the storage WAL
	// bound, 16 MiB).
	MaxFrame int
	// OpenFile opens a new run file for writing; defaults to os.Create.
	// Fault-injection hooks replace it to script write failures.
	OpenFile func(path string) (storage.SegmentFile, error)
	// Registry receives the sorter's metrics (runs, spilled bytes,
	// merge heap size, records in flight). Nil disables.
	Registry *obs.Registry
	// Name labels this sorter's metrics (the "sort" label value), so
	// several sorters can share one registry.
	Name string
}

func (o *Options[T]) maxRunItems() int {
	if o.MaxRunItems <= 0 {
		return 65536
	}
	return o.MaxRunItems
}

func (o *Options[T]) openFile(path string) (storage.SegmentFile, error) {
	if o.OpenFile != nil {
		return o.OpenFile(path)
	}
	return os.Create(path)
}

// Sorter accumulates items into sorted, spilled runs and merges them
// back as a bounded-memory stream. Not safe for concurrent use: the
// pipeline stages that feed it are the ordered, single-consumer ends
// of the worker pools.
type Sorter[T any] struct {
	opts Options[T]

	buf     []T
	runs    []string
	spilled int64
	count   int64
	scratch []byte
	frozen  bool // set once Merge has been called; no more writes

	mRuns     *obs.Counter
	mBytes    *obs.Counter
	mItems    *obs.Counter
	mInFlight *obs.Gauge
	mHeap     *obs.Gauge
}

// New creates a Sorter spilling under opts.Dir.
func New[T any](opts Options[T]) (*Sorter[T], error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("extsort: Dir is required")
	}
	if opts.Less == nil || opts.Encode == nil || opts.Decode == nil {
		return nil, fmt.Errorf("extsort: Less, Encode and Decode are required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("extsort: %w", err)
	}
	s := &Sorter[T]{opts: opts}
	if reg := opts.Registry; reg != nil {
		labels := []string{"sort", opts.Name}
		s.mRuns = reg.Counter("extsort_runs_total", "spill run files written", labels...)
		s.mBytes = reg.Counter("extsort_spilled_bytes_total", "bytes spilled to run files", labels...)
		s.mItems = reg.Counter("extsort_items_total", "items written into runs", labels...)
		s.mInFlight = reg.Gauge("extsort_buffered_items", "items buffered in memory awaiting spill", labels...)
		s.mHeap = reg.Gauge("extsort_merge_heap_size", "run heads live in the merge heap", labels...)
	}
	return s, nil
}

// Push buffers one item, spilling a sorted run when the buffer reaches
// MaxRunItems.
func (s *Sorter[T]) Push(v T) error {
	if s.frozen {
		return fmt.Errorf("extsort: push after merge")
	}
	s.buf = append(s.buf, v)
	if s.mInFlight != nil {
		s.mInFlight.SetInt(int64(len(s.buf)))
	}
	if len(s.buf) >= s.opts.maxRunItems() {
		return s.Flush()
	}
	return nil
}

// Flush sorts and spills the buffered items as one run. A no-op on an
// empty buffer.
func (s *Sorter[T]) Flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.opts.Less(s.buf[i], s.buf[j]) })
	err := s.WriteRun(s.buf)
	s.buf = s.buf[:0]
	if s.mInFlight != nil {
		s.mInFlight.SetInt(0)
	}
	return err
}

// WriteRun spills one already-sorted run. The items must be in Less
// order; the merge relies on it. Callers that produce naturally sorted
// batches (the simulator's per-batch timelines) write runs directly and
// skip the Push buffer.
func (s *Sorter[T]) WriteRun(items []T) error {
	if s.frozen {
		return fmt.Errorf("extsort: write after merge")
	}
	if len(items) == 0 {
		return nil
	}
	path := filepath.Join(s.opts.Dir, fmt.Sprintf("run-%06d.seg", len(s.runs)))
	f, err := s.opts.openFile(path)
	if err != nil {
		return fmt.Errorf("extsort: open run: %w", err)
	}
	bw := bufio.NewWriterSize(writerOnly{f}, 1<<18)
	var written int64
	var frame []byte
	for _, v := range items {
		s.scratch, err = s.opts.Encode(s.scratch[:0], v)
		if err != nil {
			f.Close()
			return fmt.Errorf("extsort: encode: %w", err)
		}
		frame = storage.AppendFrame(frame[:0], s.scratch)
		if _, err := bw.Write(frame); err != nil {
			f.Close()
			return fmt.Errorf("extsort: write run: %w", err)
		}
		written += int64(len(frame))
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: write run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("extsort: close run: %w", err)
	}
	s.runs = append(s.runs, path)
	s.spilled += written
	s.count += int64(len(items))
	if s.mRuns != nil {
		s.mRuns.Inc()
		s.mBytes.Add(written)
		s.mItems.Add(int64(len(items)))
	}
	return nil
}

// Runs returns the number of spilled run files.
func (s *Sorter[T]) Runs() int { return len(s.runs) }

// SpilledBytes returns the total bytes written to run files.
func (s *Sorter[T]) SpilledBytes() int64 { return s.spilled }

// Count returns the total items spilled into runs.
func (s *Sorter[T]) Count() int64 { return s.count }

// Merge flushes any buffered items and returns a stream yielding every
// spilled item in Less order. Merge may be called repeatedly — each
// call re-opens the run files and replays the same merged sequence, so
// multi-pass consumers (the two-pass ground-truth build) re-stream
// without re-sorting. After the first Merge the sorter is frozen: no
// further Push/WriteRun.
func (s *Sorter[T]) Merge() (*Stream[T], error) {
	if !s.frozen {
		if err := s.Flush(); err != nil {
			return nil, err
		}
		s.frozen = true
	}
	st := &Stream[T]{s: s}
	for i, path := range s.runs {
		f, err := os.Open(path)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("extsort: open run: %w", err)
		}
		r := &runReader[T]{
			s:    s,
			path: path,
			f:    f,
			br:   bufio.NewReaderSize(f, 1<<18),
			idx:  i,
		}
		ok, err := r.advance()
		if err != nil {
			st.Close()
			f.Close()
			return nil, err
		}
		if ok {
			st.h = append(st.h, r)
		} else {
			f.Close()
		}
	}
	heap.Init(&st.h)
	if s.mHeap != nil {
		s.mHeap.SetInt(int64(len(st.h)))
	}
	return st, nil
}

// Close removes the spill directory and every run file. The sorter is
// unusable afterwards.
func (s *Sorter[T]) Close() error {
	s.frozen = true
	s.buf = nil
	return os.RemoveAll(s.opts.Dir)
}

// writerOnly narrows a SegmentFile to io.Writer for bufio (SegmentFile
// has Close, which bufio must not see).
type writerOnly struct{ f storage.SegmentFile }

func (w writerOnly) Write(p []byte) (int, error) { return w.f.Write(p) }

// runReader is one run's read head: the current decoded item plus the
// buffered file reader behind it.
type runReader[T any] struct {
	s    *Sorter[T]
	path string
	f    *os.File
	br   *bufio.Reader
	idx  int
	cur  T
	off  int64
}

// advance reads and decodes the next frame. ok=false on a clean EOF at
// a frame boundary; torn or corrupt frames are hard errors naming the
// run file and offset.
func (r *runReader[T]) advance() (ok bool, err error) {
	payload, err := storage.ReadFrame(r.br, r.s.opts.MaxFrame)
	if err != nil {
		if errors.Is(err, io.EOF) && !errors.Is(err, storage.ErrTornFrame) {
			return false, nil
		}
		return false, fmt.Errorf("extsort: run %s at byte %d: %w", filepath.Base(r.path), r.off, err)
	}
	r.off += int64(len(payload)) + 8
	v, err := r.s.opts.Decode(payload)
	if err != nil {
		return false, fmt.Errorf("extsort: run %s at byte %d: decode: %w", filepath.Base(r.path), r.off, err)
	}
	r.cur = v
	return true, nil
}

// Stream is a bounded-memory merged iterator over the spilled runs: one
// decoded item and one buffered reader per run, independent of the
// total item count.
type Stream[T any] struct {
	s      *Sorter[T]
	h      mergeHeap[T]
	closed bool
}

// Next returns the next item in merge order. ok=false when the stream
// is exhausted. After an error the stream is poisoned: every later
// call returns the same error.
func (st *Stream[T]) Next() (v T, ok bool, err error) {
	if len(st.h) == 0 {
		return v, false, nil
	}
	top := st.h[0]
	v = top.cur
	more, err := top.advance()
	if err != nil {
		st.Close()
		return v, false, err
	}
	if more {
		heap.Fix(&st.h, 0)
	} else {
		heap.Pop(&st.h)
		top.f.Close()
	}
	if st.s.mHeap != nil {
		st.s.mHeap.SetInt(int64(len(st.h)))
	}
	return v, true, nil
}

// Close releases the remaining run readers. Safe to call twice; the
// run files themselves stay until Sorter.Close so Merge can re-stream.
func (st *Stream[T]) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	for _, r := range st.h {
		r.f.Close()
	}
	st.h = nil
	return nil
}

// mergeHeap orders run heads by Less on their current item, ties broken
// by run index so the merged order is stable and deterministic.
type mergeHeap[T any] []*runReader[T]

func (h mergeHeap[T]) Len() int { return len(h) }
func (h mergeHeap[T]) Less(i, j int) bool {
	if h[i].s.opts.Less(h[i].cur, h[j].cur) {
		return true
	}
	if h[i].s.opts.Less(h[j].cur, h[i].cur) {
		return false
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap[T]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap[T]) Push(x any)         { *h = append(*h, x.(*runReader[T])) }
func (h *mergeHeap[T]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
