GO ?= go

.PHONY: check lint-determinism build vet test race bench bench-pipeline bench-forest bench-ingest chaos

## check: the full gate — build, vet, determinism lint, and the
## race-enabled test suite. The worker-pool primitives behind the
## analytic pipeline, the crash-safety stack (WAL storage, collector
## drain, fault injection), the obs metrics registry and the forest
## trainer get an explicit vet + race pass so CI keeps gating them even
## if the package list is ever narrowed.
check: lint-determinism
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) vet ./internal/parallel/
	$(GO) vet ./internal/storage/ ./internal/collector/ ./internal/faultinject/
	$(GO) vet ./internal/obs/
	$(GO) vet ./internal/mlearn/
	$(GO) test -race ./internal/parallel/
	$(GO) test -race ./internal/storage/ ./internal/collector/ ./internal/faultinject/
	$(GO) test -race ./internal/obs/
	$(GO) test -race ./internal/mlearn/
	$(GO) test -race ./...

## lint-determinism: grep-based guard — the simulation packages must be
## pure functions of the seed (no time.Now, no global math/rand, no
## Date.now in non-test files).
lint-determinism:
	sh scripts/lint_determinism.sh

## chaos: the crash-recovery suite, repeated to shake out schedule- and
## timing-dependent bugs: kill/restart mid-stream, torn WAL tails,
## fsync faults, drain semantics, and seq-based idempotency — all under
## the race detector.
chaos:
	$(GO) test -race -count=3 -run 'TestChaos|TestRecover|TestShutdown|TestSeqIdempotent|TestWAL' ./internal/collector/ ./internal/storage/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the Figure 9 matching-time benchmarks plus the engine
## ablations (blocking on/off, serial vs parallel scoring), followed by
## the analytic-pipeline stage benchmarks and the BENCH_pipeline.json
## throughput snapshot (per-stage records/sec at 1 worker and NumCPU).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFigure9MatchTime|BenchmarkTopKBlocked|BenchmarkTopKParallel' -benchtime 2000x .
	$(GO) test -run xxx -bench BenchmarkPipeline -benchtime 3x .
	BENCH_PIPELINE_OUT=BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v .

## bench-pipeline: only the pipeline snapshot (BENCH_PIPELINE_USERS
## overrides the default 3000-user world).
bench-pipeline:
	BENCH_PIPELINE_OUT=BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v .

## bench-forest: the learning-based linker's forest snapshot
## (BENCH_forest.json): pair preprocessing and forest training
## throughput serial vs parallel, a tree/depth sweep, and scalar vs
## batch prediction incl. LearnLinker.TopK latency. BENCH_FOREST_USERS
## overrides the default 2500-user world.
bench-forest:
	BENCH_FOREST_OUT=BENCH_forest.json $(GO) test -run TestEmitForestBench -v -timeout 30m .

## bench-ingest: the collection-path snapshot (BENCH_ingest.json):
## accepted records/sec and per-record ACK p50/p99 across 1/4/8 shards
## × newline-JSON vs batched-binary framing, every cell at
## fsync=always. BENCH_INGEST_RECORDS overrides the default 6000
## records per cell.
bench-ingest:
	BENCH_INGEST_OUT=BENCH_ingest.json $(GO) test -run TestEmitIngestBench -v -timeout 30m .
