GO ?= go

.PHONY: check build vet test race bench

## check: the full gate — build, vet, and the race-enabled test suite.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the Figure 9 matching-time benchmarks plus the engine
## ablations (blocking on/off, serial vs parallel scoring).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFigure9MatchTime|BenchmarkTopKBlocked|BenchmarkTopKParallel' -benchtime 2000x .
