GO ?= go

# Benchmark iteration counts; override for quicker or steadier runs,
# e.g. `make bench BENCHTIME_MATCH=200x BENCHTIME_PIPELINE=1x`.
BENCHTIME_MATCH ?= 2000x
BENCHTIME_PIPELINE ?= 3x

.PHONY: check lint-determinism bench-compile build vet test race bench bench-pipeline bench-forest bench-ingest bench-linkd bench-scripts bench-1m chaos

## check: the full gate — build, vet, determinism lint, the
## bench-compile smoke, and the race-enabled test suite. The
## worker-pool primitives behind the analytic pipeline, the
## crash-safety stack (WAL storage, collector drain, fault injection),
## the obs metrics registry, the forest trainer and the external sorter
## plus its spill/merge consumers (the streaming pipeline) get an
## explicit vet + race pass so CI keeps gating them even if the package
## list is ever narrowed.
check: lint-determinism bench-compile
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) vet ./internal/parallel/
	$(GO) vet ./internal/storage/ ./internal/collector/ ./internal/faultinject/
	$(GO) vet ./internal/obs/
	$(GO) vet ./internal/mlearn/
	$(GO) vet ./internal/scriptsim/
	$(GO) vet ./internal/extsort/
	$(GO) vet ./internal/linkd/
	$(GO) test -race ./internal/parallel/
	$(GO) test -race ./internal/storage/ ./internal/collector/ ./internal/faultinject/
	$(GO) test -race ./internal/obs/
	$(GO) test -race ./internal/mlearn/
	$(GO) test -race ./internal/scriptsim/
	$(GO) test -race ./internal/extsort/
	$(GO) test -race ./internal/linkd/
	$(GO) test -race -run 'TestSpill|TestStreamReport' ./internal/population/ ./internal/report/
	$(GO) test -race ./...

## lint-determinism: grep-based guard — the simulation packages must be
## pure functions of the seed (no time.Now, no global math/rand, no
## Date.now in non-test files).
lint-determinism:
	sh scripts/lint_determinism.sh

## bench-compile: one-iteration smoke over every benchmark in the root
## bench_*_test.go harnesses, so a refactor cannot silently rot them —
## the JSON emitters (TestEmit*Bench) are env-gated and skip unless
## their BENCH_*_OUT is set, so only the Benchmark* functions run here.
bench-compile:
	$(GO) test -run=NONE -bench=. -benchtime=1x -timeout 20m .

## chaos: the crash-recovery suite, repeated to shake out schedule- and
## timing-dependent bugs: kill/restart mid-stream, torn WAL tails,
## fsync faults, drain semantics, and seq-based idempotency — all under
## the race detector.
chaos:
	$(GO) test -race -count=3 -run 'TestChaos|TestRecover|TestShutdown|TestSeqIdempotent|TestWAL' ./internal/collector/ ./internal/storage/ ./internal/linkd/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the Figure 9 matching-time benchmarks plus the engine
## ablations (blocking on/off, serial vs parallel scoring), followed by
## the analytic-pipeline stage benchmarks and the BENCH_pipeline.json
## throughput snapshot (per-stage records/sec at 1 worker and NumCPU).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFigure9MatchTime|BenchmarkTopKBlocked|BenchmarkTopKParallel' -benchtime $(BENCHTIME_MATCH) .
	$(GO) test -run xxx -bench BenchmarkPipeline -benchtime $(BENCHTIME_PIPELINE) .
	BENCH_PIPELINE_OUT=BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v -timeout 60m .

## bench-pipeline: only the pipeline snapshot (BENCH_PIPELINE_USERS
## overrides the default 20000-user world).
bench-pipeline:
	BENCH_PIPELINE_OUT=BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v -timeout 60m .

## bench-1m: the out-of-core headline — simulate → spill → merge →
## link at 1M users in bounded memory, recording peak RSS, spill bytes
## and per-stage throughput into BENCH_pipeline.json's "stream" entry.
## BENCH_STREAM_USERS overrides the default 1,000,000 (e.g.
## BENCH_STREAM_USERS=20000 for a quick local run); BENCH_STREAM_MEM_MIB
## sets the simulate batching budget (default 256); BENCH_STREAM_SPILL_DIR
## pins the spill directory (default: per-test temp dir).
bench-1m:
	BENCH_STREAM_OUT=BENCH_pipeline.json $(GO) test -run TestEmitStreamBench -v -timeout 600m .

## bench-forest: the learning-based linker's forest snapshot
## (BENCH_forest.json): pair preprocessing and forest training
## throughput serial vs parallel, a tree/depth sweep, and scalar vs
## batch prediction incl. LearnLinker.TopK latency. BENCH_FOREST_USERS
## overrides the default 2500-user world.
bench-forest:
	BENCH_FOREST_OUT=BENCH_forest.json $(GO) test -run TestEmitForestBench -v -timeout 30m .

## bench-linkd: the linking-service snapshot (BENCH_linkd.json): TopK
## query p50/p95/p99 at 100k and 1M table entries, rule-based and
## learning-based modes. BENCH_LINKD_ENTRIES overrides the table sizes
## (comma-separated, e.g. BENCH_LINKD_ENTRIES=100000), and
## BENCH_LINKD_QUERIES the per-cell query count (default 200).
bench-linkd:
	BENCH_LINKD_OUT=BENCH_linkd.json $(GO) test -run TestEmitLinkdBench -v -timeout 120m .

## bench-scripts: the script-detection snapshot (BENCH_scriptdet.json):
## corpus simulate+featurize timing, forest training on the wide sparse
## API-count matrix (dense vs sparse column path × serial vs parallel),
## batch-predict latency and held-out precision/recall/F1.
## BENCH_SCRIPTDET_SCRIPTS overrides the default 4000-script corpus.
bench-scripts:
	BENCH_SCRIPTDET_OUT=BENCH_scriptdet.json $(GO) test -run TestEmitScriptdetBench -v -timeout 30m .

## bench-ingest: the collection-path snapshot (BENCH_ingest.json):
## accepted records/sec and per-record ACK p50/p99 across 1/4/8 shards
## × newline-JSON vs batched-binary framing, every cell at
## fsync=always. BENCH_INGEST_RECORDS overrides the default 6000
## records per cell.
bench-ingest:
	BENCH_INGEST_OUT=BENCH_ingest.json $(GO) test -run TestEmitIngestBench -v -timeout 30m .
