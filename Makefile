GO ?= go

.PHONY: check build vet test race bench bench-pipeline chaos

## check: the full gate — build, vet, and the race-enabled test suite.
## The worker-pool primitives behind the analytic pipeline and the
## crash-safety stack (WAL storage, collector drain, fault injection)
## get an explicit vet + race pass so CI keeps gating them even if the
## package list is ever narrowed.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) vet ./internal/parallel/
	$(GO) vet ./internal/storage/ ./internal/collector/ ./internal/faultinject/
	$(GO) test -race ./internal/parallel/
	$(GO) test -race ./internal/storage/ ./internal/collector/ ./internal/faultinject/
	$(GO) test -race ./...

## chaos: the crash-recovery suite, repeated to shake out schedule- and
## timing-dependent bugs: kill/restart mid-stream, torn WAL tails,
## fsync faults, drain semantics, and seq-based idempotency — all under
## the race detector.
chaos:
	$(GO) test -race -count=3 -run 'TestChaos|TestRecover|TestShutdown|TestSeqIdempotent|TestWAL' ./internal/collector/ ./internal/storage/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the Figure 9 matching-time benchmarks plus the engine
## ablations (blocking on/off, serial vs parallel scoring), followed by
## the analytic-pipeline stage benchmarks and the BENCH_pipeline.json
## throughput snapshot (per-stage records/sec at 1 worker and NumCPU).
bench:
	$(GO) test -run xxx -bench 'BenchmarkFigure9MatchTime|BenchmarkTopKBlocked|BenchmarkTopKParallel' -benchtime 2000x .
	$(GO) test -run xxx -bench BenchmarkPipeline -benchtime 3x .
	BENCH_PIPELINE_OUT=BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v .

## bench-pipeline: only the pipeline snapshot (BENCH_PIPELINE_USERS
## overrides the default 3000-user world).
bench-pipeline:
	BENCH_PIPELINE_OUT=BENCH_pipeline.json $(GO) test -run TestEmitPipelineBench -v .
