package fpdyn

// The out-of-core streaming benchmark (`make bench-1m`): simulate →
// spill → merge → ground truth → regroup → classify at a user count
// that does not fit the in-memory pipeline comfortably, recording the
// bounded-memory headline (peak RSS), the spill volume, and per-stage
// throughput into BENCH_pipeline.json's "stream" entry.
//
//	BENCH_STREAM_OUT=BENCH_pipeline.json go test -run TestEmitStreamBench -v -timeout 120m .
//	BENCH_STREAM_USERS=20000 make bench-1m   # quick run at small scale
//
// The entry is merged into the existing BENCH_pipeline.json rather
// than replacing it, so the in-memory stage numbers and the streaming
// headline live side by side.

import (
	"io"
	"os"
	"strconv"
	"testing"

	"fpdyn/internal/dynamics"
	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/report"
)

func TestEmitStreamBench(t *testing.T) {
	out := os.Getenv("BENCH_STREAM_OUT")
	if out == "" {
		t.Skip("set BENCH_STREAM_OUT=<path> to emit the streaming benchmark")
	}
	users := 1_000_000
	if s := os.Getenv("BENCH_STREAM_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_STREAM_USERS %q: %v", s, err)
		}
		users = n
	}
	memBudgetMiB := int64(256)
	if s := os.Getenv("BENCH_STREAM_MEM_MIB"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_STREAM_MEM_MIB %q: %v", s, err)
		}
		memBudgetMiB = n
	}
	spillDir := os.Getenv("BENCH_STREAM_SPILL_DIR")
	if spillDir == "" {
		spillDir = t.TempDir()
	}

	cfg := population.DefaultConfig(users)
	cfg.Seed = 42
	cfg.Workers = -1 // NumCPU

	reg := obs.NewRegistry()
	timings := &obs.Timings{}
	sd, err := population.SimulateSpill(cfg, population.StreamOptions{
		SpillDir:  spillDir,
		MemBudget: memBudgetMiB << 20,
		Registry:  reg,
		Timings:   timings,
	})
	if err != nil {
		t.Fatalf("SimulateSpill: %v", err)
	}
	defer sd.Close()
	t.Logf("spilled %d records in %d runs (%.1f MiB)",
		sd.Records, sd.Runs(), float64(sd.SpilledBytes())/(1<<20))

	sr, err := report.NewStream(report.SpillSource(sd), dynamics.MapImages(sd.CanvasImages), io.Discard,
		report.StreamOptions{
			Workers:  cfg.Workers,
			SpillDir: sd.SpillRoot(),
			Registry: reg,
			Timings:  timings,
		})
	if err != nil {
		t.Fatalf("report.NewStream: %v", err)
	}
	sr.Summary()
	sr.Estimate()
	sr.Table2()

	snap := reg.Snapshot()
	res := &streamBenchResult{
		Users:        users,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		MemBudgetMiB: memBudgetMiB,
		Records:      sd.Records,
		Instances:    sr.NumInstances(),
		SpillRuns:    sd.Runs(),
		SpilledBytes: snap.Counters[`extsort_spilled_bytes_total{sort="simulate"}`] +
			snap.Counters[`extsort_spilled_bytes_total{sort="regroup"}`],
		PeakRSSBytes: obs.PeakRSSBytes(),
		TotalSeconds: timings.TotalSeconds(),
	}
	for _, st := range timings.Stages() {
		res.Stages = append(res.Stages, pipelineStageResult{
			Stage: st.Stage, Workers: cfg.Workers,
			Records: st.Records, Seconds: st.Seconds, RecsPerSec: st.RecsPerSec,
		})
	}

	rep := loadPipelineReport(out)
	rep.Stream = res
	writePipelineReport(t, out, &rep)
	t.Logf("wrote %s stream entry: %d users, %d records, %.1fs total, peak RSS %.1f MiB, spilled %.1f MiB",
		out, users, res.Records, res.TotalSeconds,
		float64(res.PeakRSSBytes)/(1<<20), float64(res.SpilledBytes)/(1<<20))
}
