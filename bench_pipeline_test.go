package fpdyn

// The pipeline benchmark harness for the parallel analytic pipeline:
// per-stage benchmarks (simulate → ground truth → dynamics →
// classify) at 1 worker and at NumCPU, plus an emitter that writes the
// measured per-stage throughput to BENCH_pipeline.json so the perf
// trajectory is tracked across PRs.
//
//	go test -run xxx -bench BenchmarkPipeline .
//	BENCH_PIPELINE_OUT=BENCH_pipeline.json go test -run TestEmitPipelineBench .

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/obs"
	"fpdyn/internal/population"
)

// pipelineWorkerModes are the two points every stage is measured at.
var pipelineWorkerModes = []struct {
	name    string
	workers int
}{
	{"workers-1", 1},
	{"workers-ncpu", -1}, // resolves to runtime.NumCPU()
}

func BenchmarkPipelineSimulate(b *testing.B) {
	cfg := population.DefaultConfig(1000)
	cfg.Seed = 42
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			cfg.Workers = mode.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				population.Simulate(cfg)
			}
		})
	}
}

func BenchmarkPipelineGroundTruth(b *testing.B) {
	w := world(b)
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				browserid.BuildParallel(w.ds.Records, mode.workers)
			}
		})
	}
}

func BenchmarkPipelineDynamics(b *testing.B) {
	w := world(b)
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dynamics.GenerateParallel(w.gt, mode.workers)
			}
		})
	}
}

func BenchmarkPipelineClassify(b *testing.B) {
	w := world(b)
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl := &dynamics.Classifier{Images: dynamics.MapImages(w.ds.CanvasImages)}
				cl.ClassifyAll(w.changed, mode.workers)
			}
		})
	}
}

// --- BENCH_pipeline.json emitter --------------------------------------

type pipelineStageResult struct {
	Stage      string  `json:"stage"`
	Workers    int     `json:"workers"`
	Records    int     `json:"records"`
	Seconds    float64 `json:"seconds"`
	RecsPerSec float64 `json:"records_per_sec"`
	AllocBytes int64   `json:"alloc_bytes,omitempty"`
	Allocs     int64   `json:"allocs,omitempty"`
}

// streamBenchResult is the out-of-core headline entry emitted by
// TestEmitStreamBench (`make bench-1m`): the end-to-end spill → merge →
// link run with its peak RSS and spill volume, stored alongside the
// in-memory per-stage numbers in BENCH_pipeline.json.
type streamBenchResult struct {
	Users        int                   `json:"users"`
	Seed         int64                 `json:"seed"`
	Workers      int                   `json:"workers"`
	MemBudgetMiB int64                 `json:"mem_budget_mib"`
	Records      int                   `json:"records"`
	Instances    int                   `json:"instances"`
	SpillRuns    int                   `json:"spill_runs"`
	SpilledBytes int64                 `json:"spilled_bytes"`
	PeakRSSBytes int64                 `json:"peak_rss_bytes"`
	TotalSeconds float64               `json:"total_seconds"`
	Stages       []pipelineStageResult `json:"stages"`
}

type pipelineBenchReport struct {
	Users        int                   `json:"users"`
	Seed         int64                 `json:"seed"`
	NumCPU       int                   `json:"num_cpu"`
	Gomaxprocs   int                   `json:"gomaxprocs"`
	PeakRSSBytes int64                 `json:"peak_rss_bytes,omitempty"`
	Stages       []pipelineStageResult `json:"stages"`
	TotalSec     map[string]float64    `json:"pipeline_seconds_by_workers"`
	Stream       *streamBenchResult    `json:"stream,omitempty"`
}

// loadPipelineReport reads an existing BENCH_pipeline.json so the two
// emitters (in-memory stages, streaming headline) can each rewrite the
// file without clobbering the other's entry. A missing or unreadable
// file yields the zero report.
func loadPipelineReport(path string) pipelineBenchReport {
	var rep pipelineBenchReport
	if data, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(data, &rep)
	}
	return rep
}

func writePipelineReport(t *testing.T, path string, rep *pipelineBenchReport) {
	t.Helper()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// allocDelta reports the heap allocation activity (bytes, mallocs)
// since the last call's snapshot. Cumulative runtime counters make the
// delta valid without forcing a GC between stages.
type allocDelta struct{ lastBytes, lastAllocs uint64 }

func (a *allocDelta) take() (bytes, allocs int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	bytes = int64(ms.TotalAlloc - a.lastBytes)
	allocs = int64(ms.Mallocs - a.lastAllocs)
	a.lastBytes, a.lastAllocs = ms.TotalAlloc, ms.Mallocs
	return bytes, allocs
}

// TestEmitPipelineBench measures each pipeline stage at 1 worker and
// at NumCPU — wall time, throughput, and allocation volume — and
// writes the per-stage numbers as JSON. Gated behind
// BENCH_PIPELINE_OUT so the regular test run stays fast; `make bench`
// sets it. An existing "stream" entry in the output file (written by
// `make bench-1m`) is preserved.
func TestEmitPipelineBench(t *testing.T) {
	out := os.Getenv("BENCH_PIPELINE_OUT")
	if out == "" {
		t.Skip("set BENCH_PIPELINE_OUT=<path> to emit the pipeline benchmark")
	}
	users := 20000
	if s := os.Getenv("BENCH_PIPELINE_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_PIPELINE_USERS %q: %v", s, err)
		}
		users = n
	}

	rep := pipelineBenchReport{
		Users:      users,
		Seed:       42,
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		TotalSec:   map[string]float64{},
		Stream:     loadPipelineReport(out).Stream,
	}
	for _, mode := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"ncpu", -1}} {
		cfg := population.DefaultConfig(users)
		cfg.Seed = 42
		cfg.Workers = mode.workers
		var alloc allocDelta
		alloc.take()

		start := time.Now()
		ds := population.Simulate(cfg)
		simSec := time.Since(start).Seconds()
		simAB, simAN := alloc.take()

		start = time.Now()
		gt := browserid.BuildParallel(ds.Records, mode.workers)
		gtSec := time.Since(start).Seconds()
		gtAB, gtAN := alloc.take()

		start = time.Now()
		dyns := dynamics.GenerateParallel(gt, mode.workers)
		dynSec := time.Since(start).Seconds()
		dynAB, dynAN := alloc.take()

		changed := dynamics.Changed(dyns)
		cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
		alloc.take()
		start = time.Now()
		cl.ClassifyAll(changed, mode.workers)
		clSec := time.Since(start).Seconds()
		clAB, clAN := alloc.take()

		n := len(ds.Records)
		for _, st := range []struct {
			stage string
			recs  int
			sec   float64
			ab    int64
			an    int64
		}{
			{"simulate", n, simSec, simAB, simAN},
			{"ground_truth", n, gtSec, gtAB, gtAN},
			{"dynamics", len(dyns), dynSec, dynAB, dynAN},
			{"classify", len(changed), clSec, clAB, clAN},
		} {
			rps := 0.0
			if st.sec > 0 {
				rps = float64(st.recs) / st.sec
			}
			rep.Stages = append(rep.Stages, pipelineStageResult{
				Stage: st.stage, Workers: mode.workers,
				Records: st.recs, Seconds: st.sec, RecsPerSec: rps,
				AllocBytes: st.ab, Allocs: st.an,
			})
		}
		rep.TotalSec[mode.label] = simSec + gtSec + dynSec + clSec
	}
	rep.PeakRSSBytes = obs.PeakRSSBytes()

	writePipelineReport(t, out, &rep)
	t.Logf("wrote %s (%d users, %d CPUs): serial %.2fs, parallel %.2fs, peak RSS %.1f MiB",
		out, users, rep.NumCPU, rep.TotalSec["1"], rep.TotalSec["ncpu"],
		float64(rep.PeakRSSBytes)/(1<<20))
}
