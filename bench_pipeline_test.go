package fpdyn

// The pipeline benchmark harness for the parallel analytic pipeline:
// per-stage benchmarks (simulate → ground truth → dynamics →
// classify) at 1 worker and at NumCPU, plus an emitter that writes the
// measured per-stage throughput to BENCH_pipeline.json so the perf
// trajectory is tracked across PRs.
//
//	go test -run xxx -bench BenchmarkPipeline .
//	BENCH_PIPELINE_OUT=BENCH_pipeline.json go test -run TestEmitPipelineBench .

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"fpdyn/internal/browserid"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/population"
)

// pipelineWorkerModes are the two points every stage is measured at.
var pipelineWorkerModes = []struct {
	name    string
	workers int
}{
	{"workers-1", 1},
	{"workers-ncpu", -1}, // resolves to runtime.NumCPU()
}

func BenchmarkPipelineSimulate(b *testing.B) {
	cfg := population.DefaultConfig(1000)
	cfg.Seed = 42
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			cfg.Workers = mode.workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				population.Simulate(cfg)
			}
		})
	}
}

func BenchmarkPipelineGroundTruth(b *testing.B) {
	w := world(b)
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				browserid.BuildParallel(w.ds.Records, mode.workers)
			}
		})
	}
}

func BenchmarkPipelineDynamics(b *testing.B) {
	w := world(b)
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dynamics.GenerateParallel(w.gt, mode.workers)
			}
		})
	}
}

func BenchmarkPipelineClassify(b *testing.B) {
	w := world(b)
	for _, mode := range pipelineWorkerModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cl := &dynamics.Classifier{Images: dynamics.MapImages(w.ds.CanvasImages)}
				cl.ClassifyAll(w.changed, mode.workers)
			}
		})
	}
}

// --- BENCH_pipeline.json emitter --------------------------------------

type pipelineStageResult struct {
	Stage      string  `json:"stage"`
	Workers    int     `json:"workers"`
	Records    int     `json:"records"`
	Seconds    float64 `json:"seconds"`
	RecsPerSec float64 `json:"records_per_sec"`
}

type pipelineBenchReport struct {
	Users    int                   `json:"users"`
	Seed     int64                 `json:"seed"`
	NumCPU   int                   `json:"num_cpu"`
	Stages   []pipelineStageResult `json:"stages"`
	TotalSec map[string]float64    `json:"pipeline_seconds_by_workers"`
}

// TestEmitPipelineBench measures each pipeline stage at 1 worker and
// at NumCPU and writes the per-stage throughput as JSON. Gated behind
// BENCH_PIPELINE_OUT so the regular test run stays fast; `make bench`
// sets it.
func TestEmitPipelineBench(t *testing.T) {
	out := os.Getenv("BENCH_PIPELINE_OUT")
	if out == "" {
		t.Skip("set BENCH_PIPELINE_OUT=<path> to emit the pipeline benchmark")
	}
	users := 3000
	if s := os.Getenv("BENCH_PIPELINE_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_PIPELINE_USERS %q: %v", s, err)
		}
		users = n
	}

	rep := pipelineBenchReport{
		Users:    users,
		Seed:     42,
		NumCPU:   runtime.NumCPU(),
		TotalSec: map[string]float64{},
	}
	for _, mode := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"ncpu", -1}} {
		cfg := population.DefaultConfig(users)
		cfg.Seed = 42
		cfg.Workers = mode.workers

		start := time.Now()
		ds := population.Simulate(cfg)
		simSec := time.Since(start).Seconds()

		start = time.Now()
		gt := browserid.BuildParallel(ds.Records, mode.workers)
		gtSec := time.Since(start).Seconds()

		start = time.Now()
		dyns := dynamics.GenerateParallel(gt, mode.workers)
		dynSec := time.Since(start).Seconds()

		changed := dynamics.Changed(dyns)
		cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
		start = time.Now()
		cl.ClassifyAll(changed, mode.workers)
		clSec := time.Since(start).Seconds()

		n := len(ds.Records)
		for _, st := range []struct {
			stage string
			recs  int
			sec   float64
		}{
			{"simulate", n, simSec},
			{"ground_truth", n, gtSec},
			{"dynamics", len(dyns), dynSec},
			{"classify", len(changed), clSec},
		} {
			rps := 0.0
			if st.sec > 0 {
				rps = float64(st.recs) / st.sec
			}
			rep.Stages = append(rep.Stages, pipelineStageResult{
				Stage: st.stage, Workers: mode.workers,
				Records: st.recs, Seconds: st.sec, RecsPerSec: rps,
			})
		}
		rep.TotalSec[mode.label] = simSec + gtSec + dynSec + clSec
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d users, %d CPUs): serial %.2fs, parallel %.2fs",
		out, users, rep.NumCPU, rep.TotalSec["1"], rep.TotalSec["ncpu"])
}
