package fpdyn

// End-to-end golden test for the parallel analytic pipeline: the full
// report rendered from a Workers:1 world must be byte-identical to the
// one rendered from a Workers:NumCPU world. Run under -race (make
// check does) this also exercises every concurrent stage — sharded
// simulation, parallel ground truth, diff fan-out, batch
// classification — for data races.

import (
	"bytes"
	"testing"

	"fpdyn/internal/population"
	"fpdyn/internal/report"
)

func renderAll(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := population.DefaultConfig(250)
	cfg.Seed = 11
	cfg.Workers = workers
	ds := population.Simulate(cfg)
	var buf bytes.Buffer
	r := report.NewWorkers(ds, &buf, workers)
	r.Summary()
	r.Estimate()
	r.Fig2()
	r.Table1()
	r.Fig3()
	r.Fig7()
	r.Table2()
	r.Table3()
	r.Insight1()
	r.Insight3()
	r.Compression()
	return buf.Bytes()
}

func TestPipelineParallelReportByteIdentical(t *testing.T) {
	serial := renderAll(t, 1)
	parallel := renderAll(t, -1) // NumCPU
	if !bytes.Equal(serial, parallel) {
		i := 0
		for i < len(serial) && i < len(parallel) && serial[i] == parallel[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		hiS, hiP := i+80, i+80
		if hiS > len(serial) {
			hiS = len(serial)
		}
		if hiP > len(parallel) {
			hiP = len(parallel)
		}
		t.Fatalf("report output diverges at byte %d:\n  Workers:1      ...%s...\n  Workers:NumCPU ...%s...",
			i, serial[lo:hiS], parallel[lo:hiP])
	}
}
