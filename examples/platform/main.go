// Platform: run the real measurement platform end to end over
// localhost TCP — a storage server, several concurrent collection
// clients pushing simulated visits through the parallel task manager
// and the hash-dedup transfer protocol, then analyses over the
// server-side store.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"

	"fpdyn/internal/browserid"
	"fpdyn/internal/collector"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

func main() {
	// Server side.
	store := storage.NewStore()
	srv := collector.NewServer(store)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()
	fmt.Printf("storage server on %s\n", addr)

	// A simulated population provides the visits.
	ds := population.Simulate(population.DefaultConfig(300))
	fmt.Printf("replaying %d visits through %d concurrent clients ...\n", len(ds.Records), 4)

	// Shard visits across clients; each runs the full pipeline:
	// parallel task collection → dedup check → submit.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			cl, err := collector.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer cl.Close()
			for i := shard; i < len(ds.Records); i += 4 {
				rec := ds.Records[i]
				fp, err := collector.Collect(context.Background(), collector.RecordBrowser{Rec: rec})
				if err != nil {
					log.Fatal(err)
				}
				full := *rec
				full.FP = fp
				if _, err := cl.Submit(&full); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("  client %d: %d records, %d bytes sent\n", shard, cl.Submitted(), cl.BytesSent())
		}(c)
	}
	wg.Wait()

	s := srv.Stats()
	fmt.Printf("server: %d records, %d values transferred, %d deduped (%.0f%% saved), %d bytes in\n",
		s.RecordsAccepted, s.ValuesReceived, s.ValuesDeduped,
		100*float64(s.ValuesDeduped)/float64(s.ValuesDeduped+s.ValuesReceived), s.BytesReceived)

	// The analyses run straight off the server-side store.
	gt := browserid.Build(store.Records())
	dyns := dynamics.Changed(dynamics.Generate(gt))
	fmt.Printf("analysis over the collected store: %d instances, %d dynamics\n",
		gt.NumInstances(), len(dyns))
}
