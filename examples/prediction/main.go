// Prediction: the paper's Insight 4 — fingerprint dynamics correlate
// with real-world release events, so a fingerprinting tool that has
// seen one instance take an update can *precompute* the post-update
// fingerprint of every other stale instance and match updated visitors
// exactly instead of fuzzily.
//
// This example observes Chrome updates in a simulated world, transfers
// the first observed update delta onto every other stale Chrome
// instance, and measures how often the prediction matches the real
// post-update fingerprint bit for bit.
package main

import (
	"fmt"

	"fpdyn"
	"fpdyn/internal/diff"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/useragent"
)

func main() {
	ds := fpdyn.Simulate(fpdyn.DefaultConfig(2500))
	gt := fpdyn.BuildGroundTruth(ds.Records)
	dyns := fpdyn.ChangedDynamics(gt)

	// Find every observed Chrome 63→64 update.
	type update struct{ d *fpdyn.Dynamics }
	var updates []update
	for _, d := range dyns {
		if !d.Delta.Has(fingerprint.FeatUserAgent) {
			continue
		}
		from, err1 := useragent.Parse(d.From.FP.UserAgent)
		to, err2 := useragent.Parse(d.To.FP.UserAgent)
		if err1 != nil || err2 != nil {
			continue
		}
		if from.Browser == useragent.Chrome && to.Browser == useragent.Chrome &&
			from.BrowserVersion.Major == 63 && to.BrowserVersion.Major == 64 {
			updates = append(updates, update{d})
		}
	}
	if len(updates) < 2 {
		fmt.Println("not enough Chrome 63→64 updates observed in this world")
		return
	}
	fmt.Printf("observed %d Chrome 63→64 updates\n", len(updates))

	// Use the FIRST observed delta as the oracle; keep only its UA part
	// (canvas repaints are environment specific).
	oracle := &diff.Delta{}
	for _, fd := range updates[0].d.Delta.Fields {
		if fd.Feature == fingerprint.FeatUserAgent {
			oracle.Fields = append(oracle.Fields, fd)
		}
	}

	// Predict every OTHER instance's post-update user agent.
	exact, total := 0, 0
	for _, u := range updates[1:] {
		predicted, ok := diff.TransferDelta(oracle, u.d.From.FP)
		if !ok {
			continue
		}
		total++
		if predicted.UserAgent == u.d.To.FP.UserAgent {
			exact++
		}
	}
	fmt.Printf("transferred the first delta to %d other instances\n", total)
	fmt.Printf("exact user-agent prediction: %d/%d (%.0f%%)\n",
		exact, total, 100*float64(exact)/float64(max(total, 1)))
	fmt.Println("\na linker holding these predictions answers updated visitors from its")
	fmt.Println("exact-match index — the mechanism behind the paper's Advice 8")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
