// Linking: evaluate the FP-Stalker baseline (rule-based and
// learning-based) on a growing synthetic dataset, reproducing the
// shape of the paper's Insight 2 — F1 and matching speed degrade as
// the database grows.
package main

import (
	"fmt"
	"log"
	"sort"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/linker"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/population"
)

func main() {
	cfg := population.DefaultConfig(1500)
	ds := population.Simulate(cfg)
	fmt.Printf("world: %d records, %d instances\n\n", len(ds.Records), ds.NumInstances)

	for _, frac := range []float64{0.3, 0.6, 1.0} {
		n := int(frac * float64(len(ds.Records)))
		recs, inst := ds.Records[:n], ds.TrueInstance[:n]

		rule := fpstalker.Evaluate(fpstalker.NewRuleLinker(), recs, inst, 10)
		fmt.Printf("rule-based     n=%-6d F1=%.3f P=%.3f R=%.3f mean-match=%v\n",
			n, rule.F1(), rule.Precision(), rule.Recall(), rule.MeanMatchTime)

		forest, err := fpstalker.TrainPairModel(recs, inst,
			mlearn.ForestConfig{Seed: 1, NumTrees: 15, MaxDepth: 8})
		if err != nil {
			log.Fatal(err)
		}
		learn := fpstalker.Evaluate(fpstalker.NewLearnLinker(forest), recs, inst, 10)
		fmt.Printf("learning-based n=%-6d F1=%.3f P=%.3f R=%.3f mean-match=%v\n",
			n, learn.F1(), learn.Precision(), learn.Recall(), learn.MeanMatchTime)

		// The dynamics-aware hybrid linker (the paper's Advices 5-8).
		hyb := fpstalker.Evaluate(linker.New(), recs, inst, 10)
		fmt.Printf("hybrid         n=%-6d F1=%.3f P=%.3f R=%.3f mean-match=%v\n\n",
			n, hyb.F1(), hyb.Precision(), hyb.Recall(), hyb.MeanMatchTime)
	}
	fmt.Println("note how FP-Stalker's match time grows with n (Figure 9) while F1 drifts down")
	fmt.Println("(Figure 10); the dynamics-aware hybrid keeps F1 higher at a fraction of the latency")

	// What did the learning model actually learn? Gini importances of
	// the pair features.
	forest, err := fpstalker.TrainPairModel(ds.Records, ds.TrueInstance,
		mlearn.ForestConfig{Seed: 1, NumTrees: 20, MaxDepth: 8})
	if err != nil {
		log.Fatal(err)
	}
	imp := forest.Importances()
	type fi struct {
		name string
		v    float64
	}
	ranked := make([]fi, len(imp))
	for i, v := range imp {
		ranked[i] = fi{fpstalker.PairFeatureNames[i], v}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].v > ranked[j].v })
	fmt.Println("\ntop pair-model features by Gini importance:")
	for _, f := range ranked[:5] {
		fmt.Printf("  %-26s %.3f\n", f.name, f.v)
	}
}
