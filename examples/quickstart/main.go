// Quickstart: the end-to-end pipeline through the public fpdyn facade —
// simulate a small population, build browser-ID ground truth, generate
// the dynamics dataset, classify a few changes, and evaluate linking.
package main

import (
	"fmt"

	"fpdyn"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
)

func main() {
	// 1. A synthetic world: 500 users visiting a website for 8 months.
	ds := fpdyn.Simulate(fpdyn.DefaultConfig(500))
	fmt.Printf("raw dataset: %d fingerprints from %d browser instances\n",
		len(ds.Records), ds.NumInstances)

	// 2. Ground truth: browser IDs from user hash + stable features,
	// with cookie-based linking of exceptional cases.
	gt := fpdyn.BuildGroundTruth(ds.Records)
	est := gt.Estimate()
	fmt.Printf("browser IDs: %d (FN est %.2f%%, FP est %.2f%%, cookie clearing %.0f%%)\n",
		gt.NumInstances(), 100*est.FalseNegativeRate, 100*est.FalsePositiveRate,
		100*est.CookieClearingShare)

	// 3. The dynamics dataset: consecutive-fingerprint deltas.
	dyns := fpdyn.ChangedDynamics(gt)
	fmt.Printf("dynamics: %d fingerprint changes\n\n", len(dyns))

	// 4. Classify them into the paper's three cause categories.
	b := fpdyn.ClassifyAll(dyns, ds, gt)
	for _, cat := range []dynamics.Category{
		dynamics.CatOSUpdate, dynamics.CatBrowserUpdate,
		dynamics.CatUserAction, dynamics.CatEnvironment,
	} {
		fmt.Printf("%-22s %5.1f%% of changes, %4.1f%% of instances\n",
			cat, b.PctChanges(b.CategoryChanges[cat]), b.PctInstances(b.CategoryInstances[cat]))
	}
	fmt.Println()

	// 5. Look at one delta in detail.
	for _, d := range dyns {
		if !d.Delta.Has(fingerprint.FeatUserAgent) {
			continue
		}
		fmt.Println("example dynamics:")
		fmt.Printf("  browser ID: %s\n", d.BrowserID)
		fmt.Printf("  from: %s\n", d.From.FP.UserAgent)
		fmt.Printf("  to:   %s\n", d.To.FP.UserAgent)
		fd := d.Delta.Field(fingerprint.FeatUserAgent)
		fmt.Printf("  subfield edits: %d, delta key: %.70s...\n", len(fd.Edits), d.Delta.Key())
		fmt.Printf("  classified as: %v\n", fpdyn.Classify(d, ds).Causes)
		break
	}

	// 6. Linking: the FP-Stalker baseline vs the dynamics-aware hybrid.
	rule := fpdyn.EvaluateLinker(fpdyn.NewRuleLinker(), ds)
	hyb := fpdyn.EvaluateLinker(fpdyn.NewHybridLinker(), ds)
	fmt.Printf("\nlinking (top-10): rule-based F1=%.3f (%v/query), hybrid F1=%.3f (%v/query)\n",
		rule.F1(), rule.MeanMatchTime, hyb.F1(), hyb.MeanMatchTime)
}
