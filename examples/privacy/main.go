// Privacy: run the paper's Insight 1 inferences on a simulated
// population — emoji leaks of co-installed software updates, font-based
// software detection, GPU image → renderer inference, and impossible-
// travel VPN detection.
package main

import (
	"fmt"
	"sort"

	"fpdyn/internal/browserid"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/inference"
	"fpdyn/internal/population"
)

func main() {
	cfg := population.DefaultConfig(2500)
	cfg.Seed = 7
	ds := population.Simulate(cfg)
	gt := browserid.Build(ds.Records)
	dyns := dynamics.Changed(dynamics.Generate(gt))
	cl := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}

	fmt.Println("== Insight 1.1: emoji updates leak co-installed software ==")
	emoji := inference.EmojiLeaks(dyns, cl)
	if emoji.Total == 0 {
		fmt.Println("no emoji leaks observed at this scale")
	}
	for fam, n := range emoji.LeakingDynamics {
		fmt.Printf("  %s: %d emoji-only canvas changes (%d instances) — e.g. a Samsung Browser\n"+
			"    update visible from this browser's canvas\n", fam, n, emoji.LeakingInstances[fam])
	}

	fmt.Println("\n== Insight 1.2: fonts leak software installs/updates ==")
	latest := map[string]*fingerprint.Fingerprint{}
	for id, recs := range gt.Instances {
		latest[id] = recs[len(recs)-1].FP
	}
	sw := inference.SoftwareFromFonts(dyns, latest)
	fmt.Printf("  MS Office updated (MT Extra appeared): %d instances\n", sw.OfficeUpdateInstances)
	fmt.Printf("  MS Office installed (font signature):  %d instances\n", sw.OfficeInstalledInstances)
	fmt.Printf("  Adobe / LibreOffice / WPS installs:    %d / %d / %d\n",
		sw.AdobeInstances, sw.LibreInstances, sw.WPSInstances)

	fmt.Println("\n== Insight 1.3: GPU images identify masked renderers ==")
	gpu := inference.GPUInference(ds.Records, ds.GPUImageInfo)
	fmt.Printf("  %d distinct GPU images; %.0f%% map to one renderer, %.0f%% to ≤3\n",
		gpu.DistinctImages, 100*gpu.UniqueShare, 100*gpu.WithinThreeShare)
	vendors := make([]string, 0, len(gpu.VendorAccuracy))
	for v := range gpu.VendorAccuracy {
		vendors = append(vendors, v)
	}
	sort.Strings(vendors)
	for _, v := range vendors {
		fmt.Printf("  %-28s %.0f%% unique\n", v, 100*gpu.VendorAccuracy[v])
	}

	fmt.Println("\n== Insight 1.4: impossible travel exposes VPN/proxy use ==")
	vel := inference.Velocity(gt.Instances, ds.Geo)
	fmt.Printf("  %d movement pairs: %d slow, %d plane-speed, %d impossible\n",
		vel.Pairs, vel.Slow, vel.Mid, vel.Impossible)
	for i, c := range vel.Cases {
		if i == 5 {
			break
		}
		fmt.Printf("  VPN case: %s → %s in %s (%.0f km/h)\n", c.FromCity, c.ToCity, c.Gap, c.SpeedKmh)
	}
}
