package fpdyn

// The forest benchmark harness for the learning-based linker's pair
// model: training throughput (serial vs parallel, tree/depth sweep),
// preprocessing throughput, and scalar-vs-batch prediction, plus an
// emitter that writes the measurements to BENCH_forest.json so the
// perf trajectory is tracked across PRs — the forest companion to
// BENCH_pipeline.json.
//
//	go test -run xxx -bench BenchmarkTopKLearn .
//	BENCH_FOREST_OUT=BENCH_forest.json go test -run TestEmitForestBench .

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/population"
)

// BenchmarkTopKLearnScalarVsBatch isolates the batch prediction lever
// in LearnLinker.TopK: identical table and query, per-pair scalar
// forest walks versus per-forest-pass candidate blocks.
func BenchmarkTopKLearnScalarVsBatch(b *testing.B) {
	w := world(b)
	n := len(w.ds.Records) / 2
	forest, err := fpstalker.TrainPairModel(w.ds.Records[:n], w.ds.TrueInstance[:n],
		mlearn.ForestConfig{Seed: 1, NumTrees: 10, MaxDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	q := evolvedQuery(w.ds.Records[len(w.ds.Records)/2])
	for _, mode := range []struct {
		name   string
		scalar bool
	}{{"scalar", true}, {"batch", false}} {
		b.Run(mode.name, func(b *testing.B) {
			l := fpstalker.NewLearnLinker(forest)
			l.NoBlocking = true // whole table: the worst case batch scoring targets
			l.Workers = 1
			l.ScalarScore = mode.scalar
			for i, rec := range w.ds.Records {
				l.Add(fpstalker.InstanceID(w.ds.TrueInstance[i]), rec)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.TopK(q, 10)
			}
		})
	}
}

// --- BENCH_forest.json emitter ----------------------------------------

type forestTrainResult struct {
	Trees       int     `json:"trees"`
	Depth       int     `json:"depth"`
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

type forestBenchReport struct {
	Pairs   int   `json:"pairs"`
	Records int   `json:"records"`
	Seed    int64 `json:"seed"`
	NumCPU  int   `json:"num_cpu"`

	// PreprocessSec: PairTrainingSet (entry preprocessing + pair-vector
	// builds) by worker label.
	PreprocessSec map[string]float64 `json:"preprocess_seconds_by_workers"`

	// Train: the Figure 10 operating points (the CLI's 15×8 forest and
	// the default 30×12) at 1 worker and NumCPU, plus the sweep.
	Train []forestTrainResult `json:"train"`
	Sweep []forestTrainResult `json:"tree_depth_sweep"`

	// Predict: forest evaluations/sec over the training matrix.
	PredictScalarPerSec float64 `json:"predict_scalar_per_sec"`
	PredictBatchPerSec  float64 `json:"predict_batch_per_sec"`

	// TopK: mean LearnLinker query latency, scalar vs batch scoring.
	TopKScalarNs int64 `json:"topk_scalar_ns_per_query"`
	TopKBatchNs  int64 `json:"topk_batch_ns_per_query"`
	TopKDBSize   int   `json:"topk_db_size"`
}

// TestEmitForestBench measures pair-model preprocessing, forest
// training and prediction throughput and writes BENCH_forest.json.
// Gated behind BENCH_FOREST_OUT so the regular test run stays fast;
// `make bench-forest` sets it.
func TestEmitForestBench(t *testing.T) {
	out := os.Getenv("BENCH_FOREST_OUT")
	if out == "" {
		t.Skip("set BENCH_FOREST_OUT=<path> to emit the forest benchmark")
	}
	users := 4000 // sized so the pair set clears 20k training pairs
	if s := os.Getenv("BENCH_FOREST_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_FOREST_USERS %q: %v", s, err)
		}
		users = n
	}
	const seed = 42
	cfg := population.DefaultConfig(users)
	cfg.Seed = seed
	cfg.Workers = -1
	ds := population.Simulate(cfg)

	rep := forestBenchReport{
		Records:       len(ds.Records),
		Seed:          seed,
		NumCPU:        runtime.NumCPU(),
		PreprocessSec: map[string]float64{},
	}

	// Preprocessing: the two-phase PairTrainingSet at 1 worker and NumCPU.
	var X [][]float64
	var y []int
	for _, mode := range []struct {
		label   string
		workers int
	}{{"1", 1}, {"ncpu", -1}} {
		start := time.Now()
		var err error
		X, y, err = fpstalker.PairTrainingSet(ds.Records, ds.TrueInstance, seed, mode.workers)
		if err != nil {
			t.Fatal(err)
		}
		rep.PreprocessSec[mode.label] = time.Since(start).Seconds()
	}
	rep.Pairs = len(X)
	t.Logf("%d records → %d training pairs", len(ds.Records), len(X))

	trainOnce := func(trees, depth, workers int) forestTrainResult {
		start := time.Now()
		if _, err := mlearn.TrainForest(X, y, mlearn.ForestConfig{
			Seed: seed, NumTrees: trees, MaxDepth: depth, Workers: workers,
		}); err != nil {
			t.Fatal(err)
		}
		sec := time.Since(start).Seconds()
		return forestTrainResult{Trees: trees, Depth: depth, Workers: workers,
			Seconds: sec, PairsPerSec: float64(len(X)) / sec}
	}
	for _, op := range []struct{ trees, depth int }{{30, 12}, {15, 8}} {
		rep.Train = append(rep.Train, trainOnce(op.trees, op.depth, 1))
		rep.Train = append(rep.Train, trainOnce(op.trees, op.depth, -1))
	}
	for _, trees := range []int{10, 30, 60} {
		for _, depth := range []int{8, 12, 16} {
			rep.Sweep = append(rep.Sweep, trainOnce(trees, depth, -1))
		}
	}

	// Prediction throughput over the training matrix, scalar vs batch,
	// in 256-row blocks — the shape LearnLinker.TopK actually scores
	// (engine.go's scoreBlock), not one giant matrix pass: a
	// whole-matrix batch call would re-stream megabytes of vectors once
	// per tree, which no production path does. Both sides walk the same
	// blocks in the same order; best of a few rounds so a CPU-steal
	// spike on a shared box cannot decide the comparison.
	forest, err := mlearn.TrainForest(X, y, mlearn.ForestConfig{Seed: seed, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	d := forest.NumFeatures()
	flat := make([]float64, 0, len(X)*d)
	for _, row := range X {
		flat = append(flat, row...)
	}
	const predBlock = 256
	probs := make([]float64, predBlock)
	bestScalar, bestBatch := math.MaxFloat64, math.MaxFloat64
	for round := 0; round < 3; round++ {
		start := time.Now()
		for _, row := range X {
			forest.PredictProba(row)
		}
		bestScalar = math.Min(bestScalar, time.Since(start).Seconds())
		start = time.Now()
		for lo := 0; lo < len(X); lo += predBlock {
			hi := min(lo+predBlock, len(X))
			forest.PredictProbaBatch(flat[lo*d:hi*d], probs[:hi-lo])
		}
		bestBatch = math.Min(bestBatch, time.Since(start).Seconds())
	}
	rep.PredictScalarPerSec = float64(len(X)) / bestScalar
	rep.PredictBatchPerSec = float64(len(X)) / bestBatch

	// TopK latency: scalar vs batch scoring over an unblocked table
	// (the candidate-set shape the paper's Figure 9 measures).
	topkForest, err := fpstalker.TrainPairModel(ds.Records[:len(ds.Records)/2],
		ds.TrueInstance[:len(ds.Records)/2],
		mlearn.ForestConfig{Seed: seed, NumTrees: 15, MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(scalar bool) *fpstalker.LearnLinker {
		l := fpstalker.NewLearnLinker(topkForest)
		l.NoBlocking = true
		l.Workers = 1
		l.ScalarScore = scalar
		for i, rec := range ds.Records {
			l.Add(fpstalker.InstanceID(ds.TrueInstance[i]), rec)
		}
		return l
	}
	// Alternating rounds, minimum mean per side: on a shared box a
	// single timed pass can absorb a CPU-steal spike large enough to
	// invert the comparison; the min of interleaved rounds is the
	// standard robust estimator for that regime.
	qs := ds.Records[:min(200, len(ds.Records))]
	scalarLinker := mk(true)
	batchLinker := mk(false)
	rep.TopKDBSize = scalarLinker.Len()
	bestScalarNs, bestBatchNs := int64(math.MaxInt64), int64(math.MaxInt64)
	for round := 0; round < 5; round++ {
		if ns := fpstalker.TimeMatching(scalarLinker, qs, 10).Nanoseconds(); ns < bestScalarNs {
			bestScalarNs = ns
		}
		if ns := fpstalker.TimeMatching(batchLinker, qs, 10).Nanoseconds(); ns < bestBatchNs {
			bestBatchNs = ns
		}
	}
	rep.TopKScalarNs = bestScalarNs
	rep.TopKBatchNs = bestBatchNs

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d pairs, train(30×12) %.2fs serial / %.2fs ncpu, topk scalar %v vs batch %v",
		out, rep.Pairs, rep.Train[0].Seconds, rep.Train[1].Seconds,
		time.Duration(rep.TopKScalarNs), time.Duration(rep.TopKBatchNs))
}
