#!/bin/sh
# lint_determinism.sh — fail if nondeterminism sneaks into the
# simulation packages. The paper-reproduction path (internal/population,
# internal/canvas) must be a pure function of the seed, and the forest
# trainer (internal/mlearn) must stay worker-count invariant — a pure
# function of (data, config): any call to time.Now, the global
# math/rand functions (which draw from a shared, unseeded source), or a
# stray JS-style Date.now breaks replayability of every figure, golden
# file and trained model. The external sorter (internal/extsort) backs
# the streaming pipeline's spill/merge path and is held to the same
# rule: the merged stream must be a pure function of the pushed items.
# The script-trace simulator (internal/scriptsim) carries the same
# contract as the population: worker-count-invariant corpora pinned by
# golden digests.
#
# Test files are exempt: they may time things or exercise randomness.
set -u

fail=0
for dir in internal/population internal/canvas internal/mlearn internal/extsort internal/scriptsim; do
    for f in "$dir"/*.go; do
        case "$f" in
        *_test.go) continue ;;
        esac
        # time.Now() — wall-clock reads.
        if grep -n 'time\.Now(' "$f"; then
            echo "determinism lint: $f calls time.Now — simulations must derive time from the seed/config" >&2
            fail=1
        fi
        # Global math/rand draws (rand.Intn etc. on the shared source).
        # Seeded instances (rng := rand.New(rand.NewSource(seed)); rng.Intn)
        # are fine and are the idiom these packages use.
        if grep -En '(^|[^.[:alnum:]_])rand\.(Seed|Int|Intn|Int31n?|Int63n?|Uint32|Uint64|Float32|Float64|NormFloat64|ExpFloat64|Perm|Shuffle|Read)\(' "$f"; then
            echo "determinism lint: $f uses the global math/rand source — use a seeded rand.New(rand.NewSource(...))" >&2
            fail=1
        fi
        # Date.now — guards generated/embedded JS snippets too.
        if grep -n 'Date\.now' "$f"; then
            echo "determinism lint: $f references Date.now" >&2
            fail=1
        fi
    done
done

# Snapshot writers (internal/storage): equal store state must
# serialize to byte-identical output — the golden digests, the
# repeated-compaction test and the cross-shard-count chaos comparisons
# all hash the serialized bytes. Go randomizes map iteration order, so
# any non-test file that emits store state (a JSONL WriteTo or the
# compaction snapshot writer) must route map-derived keys through a
# sorted helper. time.Now is legitimate here (WAL latency metrics);
# the global-rand and Date.now rules still apply.
for f in internal/storage/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    if grep -Eq 'json\.NewEncoder|func writeSnapshot' "$f" \
        && ! grep -Eq 'sort\.Strings|sortedValueHashesLocked' "$f"; then
        echo "determinism lint: $f serializes store state without sorting map-derived keys" >&2
        fail=1
    fi
    if grep -En '(^|[^.[:alnum:]_])rand\.(Seed|Int|Intn|Int31n?|Int63n?|Uint32|Uint64|Float32|Float64|NormFloat64|ExpFloat64|Perm|Shuffle|Read)\(' "$f"; then
        echo "determinism lint: $f uses the global math/rand source — use a seeded rand.New(rand.NewSource(...))" >&2
        fail=1
    fi
    if grep -n 'Date\.now' "$f"; then
        echo "determinism lint: $f references Date.now" >&2
        fail=1
    fi
done

# Matching-engine storage (internal/fpstalker): the interned SoA entry
# store and both linkers must be pure functions of the add/remove
# history — IndexDigest equality across crash recovery, replay and
# swap-delete churn is how the chaos suites prove state integrity, so
# wall-clock reads or global-rand draws in the storage/scoring files
# would poison every digest comparison. evaluate.go is exempt: it
# legitimately times match latency (the paper's Figure 9 measurement);
# learning.go's seeded rand.New sampling passes the global-rand rule.
for f in internal/fpstalker/intern.go internal/fpstalker/store.go \
    internal/fpstalker/engine.go internal/fpstalker/fpstalker.go \
    internal/fpstalker/rules.go internal/fpstalker/learning.go; do
    [ -f "$f" ] || { echo "determinism lint: missing $f (store layout moved?)" >&2; fail=1; continue; }
    if grep -n 'time\.Now(\|time\.Since(' "$f"; then
        echo "determinism lint: $f reads the wall clock — entry state must derive from record timestamps" >&2
        fail=1
    fi
    if grep -En '(^|[^.[:alnum:]_])rand\.(Seed|Int|Intn|Int31n?|Int63n?|Uint32|Uint64|Float32|Float64|NormFloat64|ExpFloat64|Perm|Shuffle|Read)\(' "$f"; then
        echo "determinism lint: $f uses the global math/rand source — use a seeded rand.New(rand.NewSource(...))" >&2
        fail=1
    fi
    if grep -n 'Date\.now' "$f"; then
        echo "determinism lint: $f references Date.now" >&2
        fail=1
    fi
done

# Linking service (internal/linkd): eviction cutoffs and chaos-test
# replay are deterministic only because every wall-clock read funnels
# through Options.Clock or the package's single `wallClock` variable
# (an alias of time.Now — the bare identifier, never a call). A direct
# time.Now()/time.Since() in a non-test file would let real time leak
# into eviction decisions and break the recovered-state digest
# comparisons. The global-rand and Date.now rules apply unchanged.
for f in internal/linkd/*.go; do
    case "$f" in
    *_test.go) continue ;;
    esac
    if grep -n 'time\.Now(' "$f"; then
        echo "determinism lint: $f calls time.Now() — route it through Options.Clock or wallClock" >&2
        fail=1
    fi
    if grep -n 'time\.Since(' "$f"; then
        echo "determinism lint: $f calls time.Since — compute deltas from the injected clock" >&2
        fail=1
    fi
    if grep -En '(^|[^.[:alnum:]_])rand\.(Seed|Int|Intn|Int31n?|Int63n?|Uint32|Uint64|Float32|Float64|NormFloat64|ExpFloat64|Perm|Shuffle|Read)\(' "$f"; then
        echo "determinism lint: $f uses the global math/rand source — use a seeded rand.New(rand.NewSource(...))" >&2
        fail=1
    fi
    if grep -n 'Date\.now' "$f"; then
        echo "determinism lint: $f references Date.now" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "determinism lint FAILED" >&2
    exit 1
fi
echo "determinism lint OK"
