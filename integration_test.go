package fpdyn

// End-to-end integration: the full measurement pipeline over a real
// TCP hop — simulate a world, push every visit through the collection
// client (parallel task manager + dedup transfer), snapshot the
// server-side store to disk, reload it, rebuild ground truth, generate
// and classify dynamics, and evaluate the linkers — asserting the
// invariants that tie the stages together.

import (
	"context"
	"net"
	"path/filepath"
	"testing"

	"fpdyn/internal/browserid"
	"fpdyn/internal/collector"
	"fpdyn/internal/dynamics"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/linker"
	"fpdyn/internal/population"
	"fpdyn/internal/stats"
	"fpdyn/internal/storage"
)

func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Stage 1: the world.
	cfg := population.DefaultConfig(150)
	cfg.Seed = 99
	ds := population.Simulate(cfg)

	// Stage 2: collection over TCP.
	store := storage.NewStore()
	srv := collector.NewServer(store)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	cl, err := collector.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range ds.Records {
		fp, err := collector.Collect(context.Background(), collector.RecordBrowser{Rec: rec})
		if err != nil {
			t.Fatal(err)
		}
		full := *rec
		full.FP = fp
		if _, err := cl.Submit(&full); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	srv.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if store.Len() != len(ds.Records) {
		t.Fatalf("collected %d of %d records", store.Len(), len(ds.Records))
	}
	if s := srv.Stats(); s.ValuesDeduped == 0 {
		t.Error("dedup never fired across a whole world")
	}

	// Stage 3: persistence round trip.
	path := filepath.Join(t.TempDir(), "world.jsonl")
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := storage.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != store.Len() {
		t.Fatalf("reloaded %d of %d records", loaded.Len(), store.Len())
	}

	// Stage 4: ground truth and dynamics off the reloaded store.
	records := loaded.Records()
	gt := browserid.Build(records)
	ratio := float64(gt.NumInstances()) / float64(ds.NumInstances)
	if ratio < 0.85 || ratio > 1.2 {
		t.Errorf("browser IDs %d vs true instances %d", gt.NumInstances(), ds.NumInstances)
	}
	dyns := dynamics.Generate(gt)
	changed := dynamics.Changed(dyns)
	clf := &dynamics.Classifier{Images: dynamics.MapImages(ds.CanvasImages)}
	b := dynamics.Analyze(changed, clf, gt.NumInstances())
	if b.TotalChanged != len(changed) {
		t.Fatalf("analyze counted %d of %d", b.TotalChanged, len(changed))
	}
	if len(changed) > 0 && b.Unclassified > len(changed)/5 {
		t.Errorf("unclassified %d of %d", b.Unclassified, len(changed))
	}

	// Stage 5: identifiability and linking sanity on the same store.
	curve := stats.AnonymitySets(records, func(i int) string { return gt.IDs[i] }, true, 5)
	for k := 1; k < 5; k++ {
		if curve.PctIdentifiable[k] < curve.PctIdentifiable[k-1] {
			t.Fatal("anonymity curve not monotone")
		}
	}
	// Collection preserved order, so the simulator's instance labels
	// still align with the reloaded records positionally.
	rule := fpstalker.Evaluate(fpstalker.NewRuleLinker(), records, ds.TrueInstance, 10)
	hyb := fpstalker.Evaluate(linker.New(), records, ds.TrueInstance, 10)
	t.Logf("pipeline: %d records, %d instances, %d dynamics; rule F1=%.3f, hybrid F1=%.3f",
		len(records), gt.NumInstances(), len(changed), rule.F1(), hyb.F1())
	if rule.F1() == 0 || hyb.F1() == 0 {
		t.Error("linking produced zero F1")
	}
}
