package fpdyn

// The script-detection benchmark harness: corpus generation +
// featurization throughput, forest training on the wide sparse
// API-count matrix (dense vs sparse column path, serial vs parallel),
// and batch-predict latency over the wide rows. The emitter writes
// BENCH_scriptdet.json so the sparse path's advantage on its target
// shape is tracked across PRs, next to BENCH_forest.json's dense pair
// matrix.
//
//	BENCH_SCRIPTDET_OUT=BENCH_scriptdet.json go test -run TestEmitScriptdetBench .

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"fpdyn/internal/mlearn"
	"fpdyn/internal/scriptsim"
)

type scriptdetTrainResult struct {
	Columns    string  `json:"columns"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Nodes      int     `json:"nodes"`
}

type scriptdetBenchReport struct {
	Scripts int     `json:"scripts"`
	APIs    int     `json:"apis"`
	Density float64 `json:"density"`
	Seed    int64   `json:"seed"`
	NumCPU  int     `json:"num_cpu"`
	Digest  string  `json:"digest"`

	SimulateSec  float64 `json:"simulate_seconds"`
	FeaturizeSec float64 `json:"featurize_seconds"`

	// Train: dense vs sparse column path at 1 worker and NumCPU, on
	// the identical matrix with the identical resulting forest.
	Train []scriptdetTrainResult `json:"train"`

	// Batch prediction over the wide matrix in 256-row blocks.
	PredictBatchPerSec float64 `json:"predict_batch_per_sec"`
	PredictBatchNsRow  int64   `json:"predict_batch_ns_per_row"`

	Precision float64 `json:"holdout_precision"`
	Recall    float64 `json:"holdout_recall"`
	F1        float64 `json:"holdout_f1"`
}

// TestEmitScriptdetBench measures the script-detection workload and
// writes BENCH_scriptdet.json. Gated behind BENCH_SCRIPTDET_OUT so the
// regular test run stays fast; `make bench-scripts` sets it.
func TestEmitScriptdetBench(t *testing.T) {
	out := os.Getenv("BENCH_SCRIPTDET_OUT")
	if out == "" {
		t.Skip("set BENCH_SCRIPTDET_OUT=<path> to emit the script-detection benchmark")
	}
	scripts := 4000
	if s := os.Getenv("BENCH_SCRIPTDET_SCRIPTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_SCRIPTDET_SCRIPTS %q: %v", s, err)
		}
		scripts = n
	}
	const seed = 42
	rep := scriptdetBenchReport{Scripts: scripts, Seed: seed, NumCPU: runtime.NumCPU()}

	start := time.Now()
	traces := scriptsim.Simulate(scriptsim.Config{Scripts: scripts, Seed: seed})
	rep.SimulateSec = time.Since(start).Seconds()
	start = time.Now()
	m := scriptsim.Featurize(traces)
	rep.FeaturizeSec = time.Since(start).Seconds()
	rep.APIs = len(m.APIs)
	rep.Density = m.Density()
	rep.Digest = m.Digest()
	t.Logf("%d scripts → %d×%d matrix, density %.4f", scripts, len(m.X), len(m.APIs), rep.Density)

	cfg := mlearn.ForestConfig{Seed: seed, NumTrees: 15, MaxDepth: mlearn.Unlimited}
	trainOnce := func(path mlearn.ColumnPath, workers int) scriptdetTrainResult {
		c := cfg
		c.Columns = path
		c.Workers = workers
		best := math.MaxFloat64
		var nodes int
		for round := 0; round < 3; round++ {
			start := time.Now()
			f, err := mlearn.TrainForest(m.X, m.Y, c)
			if err != nil {
				t.Fatal(err)
			}
			best = math.Min(best, time.Since(start).Seconds())
			nodes = f.NumNodes()
		}
		return scriptdetTrainResult{Columns: path.String(), Workers: workers,
			Seconds: best, RowsPerSec: float64(len(m.X)) / best, Nodes: nodes}
	}
	for _, path := range []mlearn.ColumnPath{mlearn.ColumnsDense, mlearn.ColumnsSparse} {
		for _, workers := range []int{1, -1} {
			rep.Train = append(rep.Train, trainOnce(path, workers))
		}
	}

	// Held-out quality at the benchmark's operating point, and batch
	// prediction over the wide rows — the serve-path shape.
	train, test, err := mlearn.StratifiedSplit(m.Y, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	Xtr := make([][]float64, len(train))
	ytr := make([]int, len(train))
	for i, r := range train {
		Xtr[i], ytr[i] = m.X[r], m.Y[r]
	}
	heldCfg := cfg
	heldCfg.Workers = -1
	forest, err := mlearn.TrainForest(Xtr, ytr, heldCfg)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := mlearn.EvaluateForest(forest, m.X, m.Y, test, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rep.Precision, rep.Recall, rep.F1 = conf.Precision(), conf.Recall(), conf.F1()

	d := forest.NumFeatures()
	flat := make([]float64, 0, len(m.X)*d)
	for _, row := range m.X {
		flat = append(flat, row...)
	}
	const predBlock = 256
	probs := make([]float64, predBlock)
	bestPred := math.MaxFloat64
	for round := 0; round < 3; round++ {
		start := time.Now()
		for lo := 0; lo < len(m.X); lo += predBlock {
			hi := min(lo+predBlock, len(m.X))
			forest.PredictProbaBatch(flat[lo*d:hi*d], probs[:hi-lo])
		}
		bestPred = math.Min(bestPred, time.Since(start).Seconds())
	}
	rep.PredictBatchPerSec = float64(len(m.X)) / bestPred
	rep.PredictBatchNsRow = int64(bestPred / float64(len(m.X)) * 1e9)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: dense %.2fs vs sparse %.2fs (serial), P %.3f R %.3f F1 %.3f",
		out, rep.Train[0].Seconds, rep.Train[2].Seconds, rep.Precision, rep.Recall, rep.F1)
}
