// Command fpserver runs the data-storage server of the measurement
// platform (Figure 1) standalone: it accepts collection-client
// connections, answers hash-dedup checks, and periodically reports
// ingest statistics.
//
// With -wal-dir the store is crash-safe: every accepted record is
// framed, checksummed and fsynced (per -fsync) to a write-ahead log
// before the client is ACKed, and on startup the log is replayed —
// truncating a torn tail frame if the previous run died mid-write.
// The paper's deployment survived an eight-day outage because clients
// kept retrying (§2.2); the WAL covers the server half of that story.
//
// On SIGINT/SIGTERM the server drains: it stops accepting, lets
// in-flight submissions finish (-drain-timeout bounds the wait), runs
// a final fsync, and snapshots the store to disk.
//
// With -admin-addr a second HTTP listener serves the observability
// surface: /metrics (Prometheus text exposition), /varz (JSON
// snapshot), /healthz (503 while draining or after a WAL write/fsync
// fault poisoned the log), and /debug/pprof/.
//
// Usage:
//
//	fpserver -addr 127.0.0.1:9400 -admin-addr 127.0.0.1:9401 -wal-dir wal/ -fsync always -o collected.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9400", "listen address")
	adminAddr := flag.String("admin-addr", "", "admin HTTP listener for /metrics, /varz, /healthz, /debug/pprof/ (empty disables)")
	out := flag.String("o", "collected.jsonl", "snapshot path written on shutdown")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory only, records lost on crash)")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight submissions on shutdown")
	flag.Parse()

	var store *storage.Store
	var wal *storage.WAL
	if *walDir != "" {
		policy, err := storage.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("fpserver: %v", err)
		}
		var stats storage.RecoveryStats
		store, wal, stats, err = storage.Recover(storage.WALOptions{
			Dir:      *walDir,
			Policy:   policy,
			Interval: *fsyncEvery,
		})
		if err != nil {
			log.Fatalf("fpserver: wal recovery: %v", err)
		}
		banner := fmt.Sprintf("wal recovery: %d records, %d values replayed from %d segments",
			stats.Records, stats.Values, stats.Segments)
		if stats.Truncated {
			banner += fmt.Sprintf(" (torn tail: %d bytes truncated)", stats.TruncatedBytes)
		}
		fmt.Println(banner)
		fmt.Printf("wal: dir=%s fsync=%s\n", *walDir, policy)
	} else {
		store = storage.NewStore()
		fmt.Println("warning: no -wal-dir; accepted records do not survive a crash")
	}
	srv := collector.NewServer(store)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fpserver: %v", err)
	}
	fmt.Printf("fpserver listening on %s\n", lis.Addr())

	if *adminAddr != "" {
		regs := []*obs.Registry{srv.Metrics()}
		if wal != nil {
			regs = append(regs, wal.Metrics())
		}
		regs = append(regs, obs.NewRuntimeRegistry())
		health := func() obs.HealthStatus {
			st := obs.HealthStatus{Healthy: true}
			if srv.Draining() {
				st.Draining = true
				st.Detail = "draining: refusing new connections"
			}
			if wal != nil {
				if werr := wal.Err(); werr != nil {
					st.Healthy = false
					st.WALError = werr.Error()
				}
			}
			return st
		}
		adminLis, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("fpserver: admin listener: %v", err)
		}
		fmt.Printf("admin endpoint on http://%s (/metrics /varz /healthz /debug/pprof/)\n", adminLis.Addr())
		go func() {
			// The admin server lives for the whole process: scrapes keep
			// working during a drain, which is exactly when they matter.
			if err := http.Serve(adminLis, obs.NewAdminHandler(health, regs...)); err != nil {
				log.Printf("fpserver: admin server: %v", err)
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				fmt.Printf("records=%d duped=%d values=%d deduped=%d bytes=%d\n",
					s.RecordsAccepted, s.RecordsDuped, s.ValuesReceived, s.ValuesDeduped, s.BytesReceived)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\ndraining: refusing new connections, finishing in-flight submissions ...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("fpserver: drain incomplete, closed %v connections early: %v", *drainTimeout, err)
		}
	}()

	if err := srv.Serve(lis); err != nil {
		log.Fatalf("fpserver: %v", err)
	}
	if wal != nil {
		// Final fsync: everything accepted is on stable storage before
		// the process exits.
		if err := wal.Close(); err != nil {
			log.Printf("fpserver: wal close: %v", err)
		}
	}
	if err := store.SaveFile(*out); err != nil {
		log.Fatalf("fpserver: snapshot: %v", err)
	}
	fmt.Printf("snapshot: %d records → %s\n", store.Len(), *out)
}
