// Command fpserver runs the data-storage server of the measurement
// platform (Figure 1) standalone: it accepts collection-client
// connections, answers hash-dedup checks, and periodically reports
// ingest statistics. On SIGINT it snapshots the store to disk.
//
// Usage:
//
//	fpserver -addr 127.0.0.1:9400 -o collected.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9400", "listen address")
	out := flag.String("o", "collected.jsonl", "snapshot path written on shutdown")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
	flag.Parse()

	store := storage.NewStore()
	srv := collector.NewServer(store)

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fpserver: %v", err)
	}
	fmt.Printf("fpserver listening on %s\n", lis.Addr())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				fmt.Printf("records=%d values=%d deduped=%d bytes=%d\n",
					s.RecordsAccepted, s.ValuesReceived, s.ValuesDeduped, s.BytesReceived)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("\nshutting down ...")
		srv.Close()
	}()

	if err := srv.Serve(lis); err != nil {
		log.Fatalf("fpserver: %v", err)
	}
	if err := store.SaveFile(*out); err != nil {
		log.Fatalf("fpserver: snapshot: %v", err)
	}
	fmt.Printf("snapshot: %d records → %s\n", store.Len(), *out)
}
