// Command fpserver runs the data-storage server of the measurement
// platform (Figure 1) standalone: it accepts collection-client
// connections, answers hash-dedup checks, and periodically reports
// ingest statistics.
//
// With -wal-dir the store is crash-safe: every accepted record is
// framed, checksummed and fsynced (per -fsync) to a write-ahead log
// before the client is ACKed, and on startup the log is replayed —
// truncating a torn tail frame if the previous run died mid-write.
// The paper's deployment survived an eight-day outage because clients
// kept retrying (§2.2); the WAL covers the server half of that story.
//
// With -shards N > 1 the store is partitioned by hash(UserID) into N
// independent WALs under wal-dir/shard-NN/, recovered in parallel on
// startup. The shard count is sticky per directory. -compact-every
// periodically checkpoints live state into a snapshot and truncates
// the replayed segments, bounding restart cost by live state rather
// than log history.
//
// Clients negotiate length-prefixed CRC-framed binary requests via a
// hello exchange; -framing json declines the upgrade and keeps every
// connection on newline-JSON.
//
// On SIGINT/SIGTERM the server drains: it stops accepting, lets
// in-flight submissions finish (-drain-timeout bounds the wait), runs
// a final fsync, and snapshots the store to disk.
//
// With -admin-addr a second HTTP listener serves the observability
// surface: /metrics (Prometheus text exposition), /varz (JSON
// snapshot), /healthz (503 while draining or after a WAL write/fsync
// fault poisoned the log), and /debug/pprof/.
//
// Usage:
//
//	fpserver -addr 127.0.0.1:9400 -admin-addr 127.0.0.1:9401 -wal-dir wal/ -shards 4 -fsync always -o collected.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// backend is the store surface fpserver needs beyond what the
// collector server consumes; both *storage.Store and
// *storage.ShardedStore satisfy it.
type backend interface {
	collector.Backend
	Len() int
	SaveFile(path string) error
}

func main() {
	addr := flag.String("addr", "127.0.0.1:9400", "listen address")
	adminAddr := flag.String("admin-addr", "", "admin HTTP listener for /metrics, /varz, /healthz, /debug/pprof/ (empty disables)")
	out := flag.String("o", "collected.jsonl", "snapshot path written on shutdown")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval (0 disables)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory (empty = in-memory only, records lost on crash)")
	fsyncMode := flag.String("fsync", "always", "WAL fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight submissions on shutdown")
	shards := flag.Int("shards", 1, "number of store shards (>1 partitions the WAL into wal-dir/shard-NN/)")
	framing := flag.String("framing", "binary", "wire framing the server will negotiate: binary | json")
	compactEvery := flag.Duration("compact-every", 0, "WAL compaction period: snapshot live state, truncate replayed segments (0 disables)")
	flag.Parse()

	if *shards < 1 {
		log.Fatalf("fpserver: -shards must be >= 1, got %d", *shards)
	}
	disableBinary := false
	switch *framing {
	case "binary":
	case "json":
		disableBinary = true
	default:
		log.Fatalf("fpserver: unknown -framing %q (want binary or json)", *framing)
	}

	var store backend
	var walErr func() error // nil when no WAL
	var walRegs []*obs.Registry
	var compact func() (storage.CompactionStats, error)
	var closeWALs func() error
	if *walDir != "" {
		policy, err := storage.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("fpserver: %v", err)
		}
		walOpts := storage.WALOptions{
			Dir:      *walDir,
			Policy:   policy,
			Interval: *fsyncEvery,
		}
		var stats storage.RecoveryStats
		if *shards == 1 {
			// Single-shard keeps the legacy flat wal-dir layout so
			// existing deployments reopen their logs unchanged.
			st, wal, rstats, err := storage.Recover(walOpts)
			if err != nil {
				log.Fatalf("fpserver: wal recovery: %v", err)
			}
			stats = rstats
			store = st
			walErr = wal.Err
			walRegs = []*obs.Registry{wal.Metrics()}
			compact = st.Compact
			closeWALs = wal.Close
		} else {
			walOpts.Registry = obs.NewRegistry()
			ss, sstats, err := storage.RecoverSharded(storage.ShardedWALOptions{
				WALOptions: walOpts,
				Shards:     *shards,
			})
			if err != nil {
				log.Fatalf("fpserver: wal recovery: %v", err)
			}
			stats = sstats.RecoveryStats
			store = ss
			walErr = ss.WALError
			walRegs = []*obs.Registry{walOpts.Registry}
			compact = ss.Compact
			closeWALs = ss.CloseWALs
		}
		banner := fmt.Sprintf("wal recovery: %d records, %d values replayed from %d segments",
			stats.Records, stats.Values, stats.Segments)
		if stats.SnapshotRecords > 0 || stats.SnapshotValues > 0 {
			banner += fmt.Sprintf(" + snapshot (%d records, %d values)",
				stats.SnapshotRecords, stats.SnapshotValues)
		}
		if stats.Truncated {
			banner += fmt.Sprintf(" (torn tail: %d bytes truncated)", stats.TruncatedBytes)
		}
		fmt.Println(banner)
		fmt.Printf("wal: dir=%s shards=%d fsync=%s\n", *walDir, *shards, policy)
	} else {
		if *shards == 1 {
			store = storage.NewStore()
		} else {
			store = storage.NewShardedStore(*shards)
		}
		fmt.Println("warning: no -wal-dir; accepted records do not survive a crash")
	}
	srv := collector.NewServer(store)
	srv.DisableBinary = disableBinary

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fpserver: %v", err)
	}
	fmt.Printf("fpserver listening on %s (framing=%s)\n", lis.Addr(), *framing)

	if *adminAddr != "" {
		regs := append([]*obs.Registry{srv.Metrics()}, walRegs...)
		regs = append(regs, obs.NewRuntimeRegistry())
		health := func() obs.HealthStatus {
			st := obs.HealthStatus{Healthy: true}
			if srv.Draining() {
				st.Draining = true
				st.Detail = "draining: refusing new connections"
			}
			if walErr != nil {
				if werr := walErr(); werr != nil {
					st.Healthy = false
					st.WALError = werr.Error()
				}
			}
			return st
		}
		adminLis, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("fpserver: admin listener: %v", err)
		}
		fmt.Printf("admin endpoint on http://%s (/metrics /varz /healthz /debug/pprof/)\n", adminLis.Addr())
		go func() {
			// The admin server lives for the whole process: scrapes keep
			// working during a drain, which is exactly when they matter.
			if err := http.Serve(adminLis, obs.NewAdminHandler(health, regs...)); err != nil {
				log.Printf("fpserver: admin server: %v", err)
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				fmt.Printf("records=%d duped=%d values=%d deduped=%d bytes=%d\n",
					s.RecordsAccepted, s.RecordsDuped, s.ValuesReceived, s.ValuesDeduped, s.BytesReceived)
			}
		}()
	}

	if *compactEvery > 0 {
		if compact == nil {
			log.Fatalf("fpserver: -compact-every requires -wal-dir")
		}
		go func() {
			for range time.Tick(*compactEvery) {
				cs, err := compact()
				if err != nil {
					log.Printf("fpserver: compaction: %v", err)
					continue
				}
				fmt.Printf("compaction: snapshot %d records, %d values (%d bytes); %d segments removed\n",
					cs.Records, cs.Values, cs.SnapshotBytes, cs.SegmentsRemoved)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\ndraining: refusing new connections, finishing in-flight submissions ...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("fpserver: drain incomplete, closed %v connections early: %v", *drainTimeout, err)
		}
	}()

	if err := srv.Serve(lis); err != nil {
		log.Fatalf("fpserver: %v", err)
	}
	if closeWALs != nil {
		// Final fsync: everything accepted is on stable storage before
		// the process exits.
		if err := closeWALs(); err != nil {
			log.Printf("fpserver: wal close: %v", err)
		}
	}
	if err := store.SaveFile(*out); err != nil {
		log.Fatalf("fpserver: snapshot: %v", err)
	}
	fmt.Printf("snapshot: %d records → %s\n", store.Len(), *out)
}
