// Command fpscriptdet runs the fingerprinting-script detection
// workload end to end: simulate a labelled corpus of per-script JS
// API-call traces (internal/scriptsim), featurize it into a wide
// sparse API-count matrix, train a random forest on a stratified
// train split, and report held-out precision/recall/F1 plus the most
// informative APIs — the companion detector to the paper's
// fingerprint-dynamics classification (Section 6), in the style of
// FPClassifier over VisibleV8 traces.
//
// Usage:
//
//	fpscriptdet
//	fpscriptdet -scripts 5000 -fpfrac 0.2 -trees 30 -columns dense
//	fpscriptdet -seed 7 -test-frac 0.25 -top 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"fpdyn/internal/mlearn"
	"fpdyn/internal/scriptsim"
)

func main() {
	scripts := flag.Int("scripts", 2000, "scripts to simulate")
	fpfrac := flag.Float64("fpfrac", 0.3, "fraction of fingerprinting scripts")
	seed := flag.Int64("seed", 1, "corpus, split and forest seed")
	trees := flag.Int("trees", 15, "forest size")
	depth := flag.Int("depth", mlearn.Unlimited, "max tree depth (-1 = unlimited)")
	testFrac := flag.Float64("test-frac", 0.3, "held-out fraction (stratified)")
	workers := flag.Int("workers", 0, "simulation/training workers: 0 = all cores")
	columns := flag.String("columns", "auto", "forest column path: auto, dense, or sparse")
	top := flag.Int("top", 15, "informative APIs to list")
	flag.Parse()

	var path mlearn.ColumnPath
	switch *columns {
	case "auto":
		path = mlearn.ColumnsAuto
	case "dense":
		path = mlearn.ColumnsDense
	case "sparse":
		path = mlearn.ColumnsSparse
	default:
		log.Fatalf("fpscriptdet: unknown -columns %q (want auto, dense or sparse)", *columns)
	}

	start := time.Now()
	traces := scriptsim.Simulate(scriptsim.Config{
		Scripts: *scripts, FPFrac: *fpfrac, Seed: *seed, Workers: *workers,
	})
	m := scriptsim.Featurize(traces)
	simSec := time.Since(start).Seconds()
	fmt.Printf("corpus    %d scripts (%d fingerprinting), %d distinct APIs, density %.4f\n",
		len(traces), countPos(m.Y), len(m.APIs), m.Density())
	fmt.Printf("digest    %s  (%.2fs simulate+featurize)\n", m.Digest(), simSec)

	train, test, err := mlearn.StratifiedSplit(m.Y, *testFrac, *seed)
	if err != nil {
		log.Fatalf("fpscriptdet: split: %v", err)
	}
	Xtr := make([][]float64, len(train))
	ytr := make([]int, len(train))
	for i, r := range train {
		Xtr[i], ytr[i] = m.X[r], m.Y[r]
	}

	start = time.Now()
	forest, err := mlearn.TrainForest(Xtr, ytr, mlearn.ForestConfig{
		Seed: *seed, NumTrees: *trees, MaxDepth: *depth,
		Workers: *workers, Columns: path,
	})
	if err != nil {
		log.Fatalf("fpscriptdet: train: %v", err)
	}
	trainSec := time.Since(start).Seconds()
	fmt.Printf("forest    %d trees, %d nodes, %s columns, trained on %d scripts in %.2fs\n",
		*trees, forest.NumNodes(), path, len(train), trainSec)

	c, err := mlearn.EvaluateForest(forest, m.X, m.Y, test, 0.5)
	if err != nil {
		log.Fatalf("fpscriptdet: evaluate: %v", err)
	}
	fmt.Printf("\nheld-out  %d scripts (TP %d  FP %d  FN %d  TN %d)\n", c.Total(), c.TP, c.FP, c.FN, c.TN)
	fmt.Printf("          precision %.3f   recall %.3f   F1 %.3f   accuracy %.3f\n",
		c.Precision(), c.Recall(), c.F1(), c.Accuracy())

	if *top > 0 {
		fmt.Printf("\ntop %d informative APIs (Gini importance):\n", *top)
		type ranked struct {
			api string
			imp float64
		}
		imp := forest.Importances()
		rs := make([]ranked, 0, len(imp))
		for j, v := range imp {
			if v > 0 {
				rs = append(rs, ranked{m.APIs[j], v})
			}
		}
		sort.Slice(rs, func(a, b int) bool {
			if rs[a].imp != rs[b].imp {
				return rs[a].imp > rs[b].imp
			}
			return rs[a].api < rs[b].api
		})
		if len(rs) > *top {
			rs = rs[:*top]
		}
		for _, r := range rs {
			fmt.Printf("  %8.4f  %s\n", r.imp, r.api)
		}
	}
	os.Exit(0)
}

func countPos(y []int) (n int) {
	for _, v := range y {
		n += v
	}
	return
}
