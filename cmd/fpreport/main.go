// Command fpreport regenerates every table and figure of the paper's
// evaluation from a synthetic dataset: Tables 1–3, Figures 2–8 and 12,
// the browser-ID error estimation (§2.3.3), the Insight 1/3 analyses,
// and the extension analyses (uniqueness/linkability trade-off, the
// feature-stemming baseline). Figures 9–11 (the FP-Stalker scaling
// evaluation) live in cmd/fpstalker, which owns the linking sweep.
//
// Usage:
//
//	fpreport -users 5000 -seed 1 -what all
//	fpreport -what table2,fig12 -scenario enterprise
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpdyn/internal/dynamics"
	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/report"
)

func main() {
	users := flag.Int("users", 3000, "number of simulated users")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", population.ScenarioPaper,
		"population preset: "+strings.Join(population.Scenarios(), ", "))
	what := flag.String("what", "all", "comma-separated artifacts: table1,table2,table3,fig2,fig3,fig4,fig5,fig6,fig7,fig8,fig12,estimate,insight1,insight3,compression,tradeoff,stemming or all")
	workers := flag.Int("workers", 0, "worker count for the simulate/ground-truth/diff/classify pipeline: 0 = serial reproduction path, -1 = NumCPU")
	stageTiming := flag.String("stage-timing", "", "path for the per-stage wall-time/records-per-sec JSON (empty disables)")
	stream := flag.Bool("stream", false, "out-of-core pipeline: spill the simulation to sorted segment files and stream the analyses in bounded memory (sections: summary, estimate, table2)")
	spillDir := flag.String("spill-dir", "", "spill directory for -stream run files (empty = temp dir, removed afterwards)")
	memBudget := flag.Int64("mem-budget", 256, "approximate in-flight memory budget for -stream simulation batching, in MiB")
	flag.Parse()

	want := map[string]bool{}
	for _, w := range strings.Split(*what, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	cfg, ok := population.NamedConfig(*scenario, *users)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; available: %s\n",
			*scenario, strings.Join(population.Scenarios(), ", "))
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	fmt.Printf("simulating %d users (scenario %s, seed %d) over %s → %s ...\n",
		cfg.Users, *scenario, cfg.Seed, cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))

	var timings *obs.Timings
	if *stageTiming != "" {
		timings = &obs.Timings{}
	}

	if *stream {
		if err := runStream(cfg, sel, timings, *spillDir, *memBudget, *stageTiming); err != nil {
			fmt.Fprintf(os.Stderr, "fpreport: %v\n", err)
			os.Exit(1)
		}
		return
	}

	stop := timings.Start("simulate")
	ds := population.Simulate(cfg)
	stop(len(ds.Records))

	r := report.NewWorkersTimed(ds, os.Stdout, *workers, timings)
	r.Summary()

	sections := []struct {
		name string
		fn   func()
	}{
		{"estimate", r.Estimate},
		{"fig2", r.Fig2},
		{"table1", r.Table1},
		{"fig3", r.Fig3},
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig6", r.Fig6},
		{"fig7", r.Fig7},
		{"table2", r.Table2},
		{"fig8", r.Fig8},
		{"table3", r.Table3},
		{"fig12", r.Fig12},
		{"insight1", r.Insight1},
		{"insight3", r.Insight3},
		{"compression", r.Compression},
		{"tradeoff", r.Tradeoff},
		{"stemming", r.Stemming},
	}
	for _, s := range sections {
		if sel(s.name) {
			s.fn()
		}
	}

	if *stageTiming != "" {
		if err := timings.WriteFile(*stageTiming); err != nil {
			fmt.Fprintf(os.Stderr, "fpreport: stage timing: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote stage timing to %s\n", *stageTiming)
	}
}

// runStream is the -stream path: the simulation spills sorted segment
// runs instead of materializing the dataset, and the report sections
// that stream (summary, estimate, table2) are computed from the merged
// record stream in bounded memory. The printed bytes for those
// sections match the in-memory path exactly.
func runStream(cfg population.Config, sel func(string) bool, timings *obs.Timings, spillDir string, memBudgetMiB int64, stageTiming string) error {
	reg := obs.NewRegistry()
	sd, err := population.SimulateSpill(cfg, population.StreamOptions{
		SpillDir:  spillDir,
		MemBudget: memBudgetMiB << 20,
		Registry:  reg,
		Timings:   timings,
	})
	if err != nil {
		return err
	}
	defer sd.Close()
	fmt.Printf("spilled %d records in %d runs (%.1f MiB)\n",
		sd.Records, sd.Runs(), float64(sd.SpilledBytes())/(1<<20))

	sr, err := report.NewStream(report.SpillSource(sd), dynamics.MapImages(sd.CanvasImages), os.Stdout,
		report.StreamOptions{
			Workers:  cfg.Workers,
			SpillDir: sd.SpillRoot(),
			Registry: reg,
			Timings:  timings,
		})
	if err != nil {
		return err
	}
	sr.Summary()
	if sel("estimate") {
		sr.Estimate()
	}
	if sel("table2") {
		sr.Table2()
	}
	if rss := obs.PeakRSSBytes(); rss > 0 {
		fmt.Printf("peak RSS: %.1f MiB\n", float64(rss)/(1<<20))
	}
	if stageTiming != "" {
		timings.SetSnapshot(reg.Snapshot())
		if err := timings.WriteFile(stageTiming); err != nil {
			return fmt.Errorf("stage timing: %w", err)
		}
		fmt.Printf("wrote stage timing to %s\n", stageTiming)
	}
	return nil
}
