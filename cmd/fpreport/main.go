// Command fpreport regenerates every table and figure of the paper's
// evaluation from a synthetic dataset: Tables 1–3, Figures 2–8 and 12,
// the browser-ID error estimation (§2.3.3), the Insight 1/3 analyses,
// and the extension analyses (uniqueness/linkability trade-off, the
// feature-stemming baseline). Figures 9–11 (the FP-Stalker scaling
// evaluation) live in cmd/fpstalker, which owns the linking sweep.
//
// Usage:
//
//	fpreport -users 5000 -seed 1 -what all
//	fpreport -what table2,fig12 -scenario enterprise
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/report"
)

func main() {
	users := flag.Int("users", 3000, "number of simulated users")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", population.ScenarioPaper,
		"population preset: "+strings.Join(population.Scenarios(), ", "))
	what := flag.String("what", "all", "comma-separated artifacts: table1,table2,table3,fig2,fig3,fig4,fig5,fig6,fig7,fig8,fig12,estimate,insight1,insight3,compression,tradeoff,stemming or all")
	workers := flag.Int("workers", 0, "worker count for the simulate/ground-truth/diff/classify pipeline: 0 = serial reproduction path, -1 = NumCPU")
	stageTiming := flag.String("stage-timing", "", "path for the per-stage wall-time/records-per-sec JSON (empty disables)")
	flag.Parse()

	want := map[string]bool{}
	for _, w := range strings.Split(*what, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	cfg, ok := population.NamedConfig(*scenario, *users)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q; available: %s\n",
			*scenario, strings.Join(population.Scenarios(), ", "))
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	fmt.Printf("simulating %d users (scenario %s, seed %d) over %s → %s ...\n",
		cfg.Users, *scenario, cfg.Seed, cfg.Start.Format("2006-01-02"), cfg.End.Format("2006-01-02"))

	var timings *obs.Timings
	if *stageTiming != "" {
		timings = &obs.Timings{}
	}
	stop := timings.Start("simulate")
	ds := population.Simulate(cfg)
	stop(len(ds.Records))

	r := report.NewWorkersTimed(ds, os.Stdout, *workers, timings)
	r.Summary()

	sections := []struct {
		name string
		fn   func()
	}{
		{"estimate", r.Estimate},
		{"fig2", r.Fig2},
		{"table1", r.Table1},
		{"fig3", r.Fig3},
		{"fig4", r.Fig4},
		{"fig5", r.Fig5},
		{"fig6", r.Fig6},
		{"fig7", r.Fig7},
		{"table2", r.Table2},
		{"fig8", r.Fig8},
		{"table3", r.Table3},
		{"fig12", r.Fig12},
		{"insight1", r.Insight1},
		{"insight3", r.Insight3},
		{"compression", r.Compression},
		{"tradeoff", r.Tradeoff},
		{"stemming", r.Stemming},
	}
	for _, s := range sections {
		if sel(s.name) {
			s.fn()
		}
	}

	if *stageTiming != "" {
		if err := timings.WriteFile(*stageTiming); err != nil {
			fmt.Fprintf(os.Stderr, "fpreport: stage timing: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote stage timing to %s\n", *stageTiming)
	}
}
