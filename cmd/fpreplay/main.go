// Command fpreplay streams a saved dataset snapshot through a live
// collection server using the resilient client — a load generator for
// cmd/fpserver and a demonstration of the transfer pipeline surviving
// outages. Visits replay in record order; -speedup compresses the
// original eight-month timeline.
//
// Usage:
//
//	fpgen -users 5000 -o dataset.jsonl
//	fpserver -addr 127.0.0.1:9400 &
//	fpreplay -in dataset.jsonl -addr 127.0.0.1:9400 -speedup 2000000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/storage"
)

func main() {
	in := flag.String("in", "dataset.jsonl", "dataset snapshot to replay")
	addr := flag.String("addr", "127.0.0.1:9400", "collection server address")
	speedup := flag.Float64("speedup", 5_000_000, "timeline compression factor (1 = real time)")
	report := flag.Int("report", 1000, "progress report interval in records")
	flag.Parse()

	store, err := storage.LoadFile(*in)
	if err != nil {
		log.Fatalf("fpreplay: %v", err)
	}
	records := store.Records()
	if len(records) == 0 {
		log.Fatal("fpreplay: empty dataset")
	}
	fmt.Printf("replaying %d records from %s to %s (speedup %.0fx)\n",
		len(records), *in, *addr, *speedup)

	client := collector.NewResilientClient(*addr)
	defer client.Close()

	start := time.Now()
	t0 := records[0].Time
	delivered, buffered := 0, 0
	for i, rec := range records {
		// Pace the replay against the compressed original timeline.
		due := time.Duration(float64(rec.Time.Sub(t0)) / *speedup)
		if sleep := due - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		if err := client.Submit(rec); err != nil {
			buffered++
		} else {
			delivered++
		}
		if (i+1)%*report == 0 {
			st := client.Stats()
			fmt.Printf("  %d/%d replayed (sent %d, pending %d, dropped %d, retransmits %d)\n",
				i+1, len(records), st.Sent, client.Pending(), st.Dropped, st.Retransmits)
		}
	}
	// Final drain attempt.
	if err := client.Flush(); err != nil {
		log.Printf("fpreplay: flush: %v", err)
	}
	st := client.Stats()
	fmt.Printf("done in %v: %d sent, %d still pending, %d dropped, %d retransmits\n",
		time.Since(start).Round(time.Millisecond), st.Sent, client.Pending(), st.Dropped, st.Retransmits)
	_ = delivered
	_ = buffered
}
