// Command fplinkd runs the always-on linking service: FP-Stalker
// matching (rule-based and learning-based) behind a framed TCP
// protocol, hardened for continuous operation.
//
// Robustness machinery, all on by default:
//
//   - Admission control: at most -max-inflight queries score
//     concurrently, at most -queue-depth more wait; arrivals beyond
//     that are answered Overloaded immediately instead of stalling the
//     connection.
//   - Deadline propagation: a query's deadline_ms rides its context
//     into the scoring workers, so a timed-out query stops consuming
//     CPU mid-scan.
//   - Graceful degradation: sustained overload (shed rate or p99 over
//     the -shed-high / -p99-high watermarks for -degrade-after
//     consecutive samples) switches service to the ~25×-cheaper
//     rule-based linker; calm (-shed-low / -p99-low for
//     -recover-after samples) switches back. The linkd_mode_rule
//     gauge exposes the current mode.
//   - Crash-safe state: with -wal-dir every add is journaled through
//     the storage WAL before the ACK; restart replays the newest
//     snapshot plus uncovered segments (torn tails truncated) and
//     rebuilds the exact blocking index.
//   - Sliding collect window: -window evicts instances whose latest
//     observation (by record time) has aged out — the paper's
//     collect-period semantics — and -compact-every checkpoints the
//     live table, dropping evicted history from disk.
//   - Graceful drain: SIGINT/SIGTERM stops admitting, finishes
//     in-flight queries within -drain-timeout, snapshots, and exits.
//
// The learning linker needs a pair model; -train-users simulates a
// population and trains one at startup. -rule-only skips training and
// serves every query rule-based.
//
// Usage:
//
//	fplinkd -addr 127.0.0.1:9500 -admin-addr 127.0.0.1:9501 \
//	        -wal-dir linkwal/ -window 720h -train-users 2000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/linkd"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9500", "listen address")
	adminAddr := flag.String("admin-addr", "", "admin HTTP listener for /metrics, /varz, /healthz, /debug/pprof/ (empty disables)")
	walDir := flag.String("wal-dir", "", "add-journal directory (empty = in-memory only, adds lost on crash)")
	fsyncMode := flag.String("fsync", "always", "journal fsync policy: always | interval | never")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync period for -fsync interval")
	window := flag.Duration("window", 0, "sliding collect window; instances older than this (by record time) are evicted (0 disables)")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrently scoring queries (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "max queries waiting for a slot before shedding (0 = 4×max-inflight)")
	workers := flag.Int("workers", 0, "scoring workers per query: 0 = all cores, 1 = serial")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight queries on shutdown")
	compactEvery := flag.Duration("compact-every", 0, "journal compaction period (0 disables)")
	sampleEvery := flag.Duration("sample-every", 5*time.Second, "overload-sampling and eviction period")
	shedHigh := flag.Float64("shed-high", 0.10, "shed-rate watermark to enter degraded (rule-based) mode")
	p99High := flag.Float64("p99-high", 0.5, "query p99 watermark (seconds) to enter degraded mode")
	shedLow := flag.Float64("shed-low", 0.01, "shed-rate watermark to leave degraded mode")
	p99Low := flag.Float64("p99-low", 0.1, "query p99 watermark (seconds) to leave degraded mode")
	degradeAfter := flag.Int("degrade-after", 3, "consecutive bad samples before degrading")
	recoverAfter := flag.Int("recover-after", 5, "consecutive good samples before recovering")
	trainUsers := flag.Int("train-users", 2000, "simulated users for pair-model training")
	trainSeed := flag.Int64("train-seed", 1, "training simulation seed")
	ruleOnly := flag.Bool("rule-only", false, "skip pair-model training; serve every query rule-based")
	flag.Parse()

	rule := fpstalker.NewRuleLinker()
	rule.Workers = *workers
	opts := linkd.Options{
		Rule:         rule,
		Window:       *window,
		MaxInFlight:  *maxInFlight,
		QueueDepth:   *queueDepth,
		ShedHigh:     *shedHigh,
		P99High:      *p99High,
		ShedLow:      *shedLow,
		P99Low:       *p99Low,
		DegradeAfter: *degradeAfter,
		RecoverAfter: *recoverAfter,
		SampleEvery:  *sampleEvery,
	}

	if !*ruleOnly {
		fmt.Printf("training pair model on %d simulated users (seed %d) ...\n", *trainUsers, *trainSeed)
		start := time.Now()
		cfg := population.DefaultConfig(*trainUsers)
		cfg.Seed = *trainSeed
		ds := population.Simulate(cfg)
		forest, err := fpstalker.TrainPairModel(ds.Records, ds.TrueInstance,
			mlearn.ForestConfig{Seed: *trainSeed, NumTrees: 15, MaxDepth: 8})
		if err != nil {
			log.Fatalf("fplinkd: train: %v", err)
		}
		learn := fpstalker.NewLearnLinker(forest)
		learn.Workers = *workers
		opts.Learn = learn
		fmt.Printf("pair model trained in %s (%d records)\n", time.Since(start).Round(time.Millisecond), len(ds.Records))
	} else {
		fmt.Println("rule-only: learning linker disabled")
	}

	if *walDir != "" {
		policy, err := storage.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("fplinkd: %v", err)
		}
		opts.WAL = storage.WALOptions{Dir: *walDir, Policy: policy, Interval: *fsyncEvery}
	} else {
		fmt.Println("warning: no -wal-dir; adds do not survive a crash")
	}

	svc, stats, err := linkd.Open(opts)
	if err != nil {
		log.Fatalf("fplinkd: open: %v", err)
	}
	if *walDir != "" {
		banner := fmt.Sprintf("journal recovery: %d adds replayed from %d segments", stats.Frames, stats.Segments)
		if stats.SnapshotFrames > 0 {
			banner += fmt.Sprintf(" + snapshot (%d entries)", stats.SnapshotFrames)
		}
		if stats.Truncated {
			banner += fmt.Sprintf(" (torn tail: %d bytes truncated)", stats.TruncatedBytes)
		}
		fmt.Println(banner)
		if evicted := svc.EvictExpired(); evicted > 0 {
			fmt.Printf("collect window: %d replayed instances already expired\n", evicted)
		}
		fmt.Printf("table: %d live instances\n", svc.Len())
	}

	srv := linkd.NewServer(svc)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fplinkd: %v", err)
	}
	fmt.Printf("fplinkd listening on %s\n", lis.Addr())

	if *adminAddr != "" {
		regs := []*obs.Registry{svc.Metrics(), obs.NewRuntimeRegistry()}
		health := func() obs.HealthStatus {
			return obs.HealthStatus{Healthy: true}
		}
		adminLis, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("fplinkd: admin listener: %v", err)
		}
		fmt.Printf("admin endpoint on http://%s (/metrics /varz /healthz /debug/pprof/)\n", adminLis.Addr())
		go func() {
			if err := http.Serve(adminLis, obs.NewAdminHandler(health, regs...)); err != nil {
				log.Printf("fplinkd: admin server: %v", err)
			}
		}()
	}

	if *compactEvery > 0 {
		if *walDir == "" {
			log.Fatalf("fplinkd: -compact-every requires -wal-dir")
		}
		go func() {
			for range time.Tick(*compactEvery) {
				n, err := svc.Compact()
				if err != nil {
					log.Printf("fplinkd: compaction: %v", err)
					continue
				}
				fmt.Printf("compaction: %d live instances snapshotted (%d bytes)\n", svc.Len(), n)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\ndraining: refusing new connections, finishing in-flight queries ...")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("fplinkd: drain incomplete, closed connections early: %v", err)
		}
	}()

	if err := srv.Serve(lis); err != nil {
		log.Fatalf("fplinkd: %v", err)
	}
	if *walDir != "" {
		// Final checkpoint: the next start replays live state, not the
		// whole add history.
		if _, err := svc.Compact(); err != nil {
			log.Printf("fplinkd: final compaction: %v", err)
		}
	}
	if err := svc.Close(); err != nil {
		log.Printf("fplinkd: close: %v", err)
	}
	fmt.Printf("shutdown complete: %d live instances\n", svc.Len())
}
