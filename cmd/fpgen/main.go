// Command fpgen generates a synthetic raw dataset (the stand-in for
// the paper's NDA-gated deployment data) and writes it as a JSONL
// storage snapshot that cmd/fpserver, cmd/fpstalker and the examples
// can load.
//
// Usage:
//
//	fpgen -users 10000 -seed 1 -o dataset.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

func main() {
	users := flag.Int("users", 5000, "number of simulated users")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", population.ScenarioPaper, "population preset")
	deployment := flag.Bool("deployment", false, "simulate the §2.2.2 hot patches and partial outage")
	out := flag.String("o", "dataset.jsonl", "output snapshot path")
	truth := flag.String("truth", "", "optional path for the ground-truth sidecar (instance serials and cause labels)")
	flag.Parse()

	cfg, ok := population.NamedConfig(*scenario, *users)
	if !ok {
		log.Fatalf("fpgen: unknown scenario %q", *scenario)
	}
	cfg.Seed = *seed
	cfg.SimulateDeployment = *deployment
	ds := population.Simulate(cfg)

	store := storage.NewStore()
	for _, rec := range ds.Records {
		store.Append(rec)
	}
	if err := store.SaveFile(*out); err != nil {
		log.Fatalf("fpgen: %v", err)
	}
	fmt.Printf("wrote %d records (%d instances, %d users) to %s\n",
		len(ds.Records), ds.NumInstances, cfg.Users, *out)

	if *truth != "" {
		f, err := os.Create(*truth)
		if err != nil {
			log.Fatalf("fpgen: %v", err)
		}
		for i := range ds.Records {
			fmt.Fprintf(f, "%d", ds.TrueInstance[i])
			for _, ev := range ds.Truth[i] {
				fmt.Fprintf(f, " %s", ev)
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("fpgen: %v", err)
		}
		fmt.Printf("wrote ground truth sidecar to %s\n", *truth)
	}
}
