// Command fpgen generates a synthetic raw dataset (the stand-in for
// the paper's NDA-gated deployment data) and writes it as a JSONL
// storage snapshot that cmd/fpserver, cmd/fpstalker and the examples
// can load.
//
// Usage:
//
//	fpgen -users 10000 -seed 1 -o dataset.jsonl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

func main() {
	users := flag.Int("users", 5000, "number of simulated users")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", population.ScenarioPaper, "population preset")
	deployment := flag.Bool("deployment", false, "simulate the §2.2.2 hot patches and partial outage")
	out := flag.String("o", "dataset.jsonl", "output snapshot path")
	truth := flag.String("truth", "", "optional path for the ground-truth sidecar (instance serials and cause labels)")
	workers := flag.Int("workers", 0, "simulation worker count: 0 = serial reproduction path, -1 = NumCPU")
	stageTiming := flag.String("stage-timing", "", "path for the per-stage wall-time/records-per-sec JSON (empty disables)")
	flag.Parse()

	cfg, ok := population.NamedConfig(*scenario, *users)
	if !ok {
		log.Fatalf("fpgen: unknown scenario %q", *scenario)
	}
	cfg.Seed = *seed
	cfg.SimulateDeployment = *deployment
	cfg.Workers = *workers

	var timings *obs.Timings
	if *stageTiming != "" {
		timings = &obs.Timings{}
	}
	stop := timings.Start("simulate")
	ds := population.Simulate(cfg)
	stop(len(ds.Records))

	stop = timings.Start("snapshot_write")
	store := storage.NewStore()
	for _, rec := range ds.Records {
		store.Append(rec)
	}
	if err := store.SaveFile(*out); err != nil {
		log.Fatalf("fpgen: %v", err)
	}
	stop(len(ds.Records))
	fmt.Printf("wrote %d records (%d instances, %d users) to %s\n",
		len(ds.Records), ds.NumInstances, cfg.Users, *out)

	if *truth != "" {
		stop = timings.Start("truth_sidecar")
		if err := writeTruth(*truth, ds); err != nil {
			log.Fatalf("fpgen: %v", err)
		}
		stop(len(ds.Records))
		fmt.Printf("wrote ground truth sidecar to %s\n", *truth)
	}
	if *stageTiming != "" {
		if err := timings.WriteFile(*stageTiming); err != nil {
			log.Fatalf("fpgen: stage timing: %v", err)
		}
		fmt.Printf("wrote stage timing to %s\n", *stageTiming)
	}
}

// writeTruth writes the ground-truth sidecar through a buffered
// writer. bufio's sticky error means the Flush at the end surfaces any
// write failure along the way (a full disk no longer yields a silently
// truncated sidecar).
func writeTruth(path string, ds *population.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for i := range ds.Records {
		fmt.Fprintf(bw, "%d", ds.TrueInstance[i])
		for _, ev := range ds.Truth[i] {
			fmt.Fprintf(bw, " %s", ev)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
