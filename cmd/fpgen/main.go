// Command fpgen generates a synthetic raw dataset (the stand-in for
// the paper's NDA-gated deployment data) and writes it as a JSONL
// storage snapshot that cmd/fpserver, cmd/fpstalker and the examples
// can load.
//
// Usage:
//
//	fpgen -users 10000 -seed 1 -o dataset.jsonl
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"fpdyn/internal/obs"
	"fpdyn/internal/population"
	"fpdyn/internal/storage"
)

func main() {
	users := flag.Int("users", 5000, "number of simulated users")
	seed := flag.Int64("seed", 1, "simulation seed")
	scenario := flag.String("scenario", population.ScenarioPaper, "population preset")
	deployment := flag.Bool("deployment", false, "simulate the §2.2.2 hot patches and partial outage")
	out := flag.String("o", "dataset.jsonl", "output snapshot path")
	truth := flag.String("truth", "", "optional path for the ground-truth sidecar (instance serials and cause labels)")
	workers := flag.Int("workers", 0, "simulation worker count: 0 = serial reproduction path, -1 = NumCPU")
	stageTiming := flag.String("stage-timing", "", "path for the per-stage wall-time/records-per-sec JSON (empty disables)")
	stream := flag.Bool("stream", false, "out-of-core mode: spill the simulation to sorted segment files and stream the snapshot (and truth sidecar) from the merged runs in bounded memory")
	spillDir := flag.String("spill-dir", "", "spill directory for -stream run files (empty = temp dir, removed afterwards)")
	memBudget := flag.Int64("mem-budget", 256, "approximate in-flight memory budget for -stream simulation batching, in MiB")
	flag.Parse()

	cfg, ok := population.NamedConfig(*scenario, *users)
	if !ok {
		log.Fatalf("fpgen: unknown scenario %q", *scenario)
	}
	cfg.Seed = *seed
	cfg.SimulateDeployment = *deployment
	cfg.Workers = *workers

	var timings *obs.Timings
	if *stageTiming != "" {
		timings = &obs.Timings{}
	}

	if *stream {
		if err := runStream(cfg, timings, *out, *truth, *spillDir, *memBudget, *stageTiming); err != nil {
			log.Fatalf("fpgen: %v", err)
		}
		return
	}

	stop := timings.Start("simulate")
	ds := population.Simulate(cfg)
	stop(len(ds.Records))

	stop = timings.Start("snapshot_write")
	store := storage.NewStore()
	for _, rec := range ds.Records {
		store.Append(rec)
	}
	if err := store.SaveFile(*out); err != nil {
		log.Fatalf("fpgen: %v", err)
	}
	stop(len(ds.Records))
	fmt.Printf("wrote %d records (%d instances, %d users) to %s\n",
		len(ds.Records), ds.NumInstances, cfg.Users, *out)

	if *truth != "" {
		stop = timings.Start("truth_sidecar")
		if err := writeTruth(*truth, ds); err != nil {
			log.Fatalf("fpgen: %v", err)
		}
		stop(len(ds.Records))
		fmt.Printf("wrote ground truth sidecar to %s\n", *truth)
	}
	if *stageTiming != "" {
		if err := timings.WriteFile(*stageTiming); err != nil {
			log.Fatalf("fpgen: stage timing: %v", err)
		}
		fmt.Printf("wrote stage timing to %s\n", *stageTiming)
	}
}

// runStream is the -stream path: the simulation spills sorted per-shard
// segment runs instead of materializing the dataset, and the snapshot
// (plus the optional truth sidecar) is written from the k-way merged
// record stream. The output bytes match the in-memory path exactly —
// both walk records in (time, serial) order.
func runStream(cfg population.Config, timings *obs.Timings, out, truth, spillDir string, memBudgetMiB int64, stageTiming string) error {
	reg := obs.NewRegistry()
	sd, err := population.SimulateSpill(cfg, population.StreamOptions{
		SpillDir:  spillDir,
		MemBudget: memBudgetMiB << 20,
		Registry:  reg,
		Timings:   timings,
	})
	if err != nil {
		return err
	}
	defer sd.Close()

	stop := timings.Start("snapshot_write")
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	sw := storage.NewSnapshotWriter(f)
	var tf *os.File
	var tw *bufio.Writer
	if truth != "" {
		if tf, err = os.Create(truth); err != nil {
			f.Close()
			return err
		}
		tw = bufio.NewWriter(tf)
	}
	closeAll := func() {
		f.Close()
		if tf != nil {
			tf.Close()
		}
	}

	st, err := sd.Stream()
	if err != nil {
		closeAll()
		return err
	}
	n := 0
	for {
		item, ok, err := st.Next()
		if err != nil {
			st.Close()
			closeAll()
			return err
		}
		if !ok {
			break
		}
		if err := sw.Record(item.Rec); err != nil {
			st.Close()
			closeAll()
			return err
		}
		if tw != nil {
			fmt.Fprintf(tw, "%d", item.Instance)
			for _, ev := range item.Truth {
				fmt.Fprintf(tw, " %s", ev)
			}
			fmt.Fprintln(tw)
		}
		n++
	}
	if err := st.Close(); err != nil {
		closeAll()
		return err
	}
	if err := sw.Close(); err != nil {
		closeAll()
		return err
	}
	if err := f.Close(); err != nil {
		if tf != nil {
			tf.Close()
		}
		return err
	}
	stop(n)
	fmt.Printf("wrote %d records (%d instances, %d users) to %s\n",
		n, sd.NumInstances, cfg.Users, out)
	if tw != nil {
		if err := tw.Flush(); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote ground truth sidecar to %s\n", truth)
	}
	if rss := obs.PeakRSSBytes(); rss > 0 {
		fmt.Printf("peak RSS: %.1f MiB, spilled %.1f MiB in %d runs\n",
			float64(rss)/(1<<20), float64(sd.SpilledBytes())/(1<<20), sd.Runs())
	}
	if stageTiming != "" {
		timings.SetSnapshot(reg.Snapshot())
		if err := timings.WriteFile(stageTiming); err != nil {
			return fmt.Errorf("stage timing: %w", err)
		}
		fmt.Printf("wrote stage timing to %s\n", stageTiming)
	}
	return nil
}

// writeTruth writes the ground-truth sidecar through a buffered
// writer. bufio's sticky error means the Flush at the end surfaces any
// write failure along the way (a full disk no longer yields a silently
// truncated sidecar).
func writeTruth(path string, ds *population.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for i := range ds.Records {
		fmt.Fprintf(bw, "%d", ds.TrueInstance[i])
		for _, ev := range ds.Truth[i] {
			fmt.Fprintf(bw, " %s", ev)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
