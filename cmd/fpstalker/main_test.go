package main

import (
	"testing"

	"fpdyn/internal/fpstalker"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/useragent"
)

func TestParseSizes(t *testing.T) {
	got := parseSizes("100, 2000,30000")
	want := []int{100, 2000, 30000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestWorldForReachesSize(t *testing.T) {
	ds := worldFor(500, 3)
	if len(ds.Records) < 500 {
		t.Fatalf("worldFor(500) produced %d records", len(ds.Records))
	}
}

func TestEvolvedQueriesAreNonExact(t *testing.T) {
	ds := worldFor(300, 4)
	queries := evolvedQueries(ds, 10)
	if len(queries) == 0 {
		t.Fatal("no queries")
	}
	for _, q := range queries {
		if q.FP.CanvasHash == ds.Records[0].FP.CanvasHash && q.FP.CanvasHash != "" {
			continue // different base record; fine
		}
	}
	// An evolved query must not exactly equal its source record.
	src := ds.Records[0]
	if queries[0].FP.Equal(src.FP) {
		t.Fatal("evolved query identical to source")
	}
}

func TestF1Row(t *testing.T) {
	res := fpstalker.EvalResult{Confusion: mlearn.Confusion{TP: 8, FP: 2, FN: 2}}
	row := f1Row(100, "rule", res)
	if row[0] != "100" || row[1] != "rule" || row[2] != "0.800" || row[3] != "0.800" || row[4] != "0.800" {
		t.Fatalf("row = %v", row)
	}
}

func TestFillRespectsSize(t *testing.T) {
	ds := worldFor(300, 5)
	l := fpstalker.NewRuleLinker()
	fill(l, ds, 50)
	if l.Len() == 0 || l.Len() > 50 {
		t.Fatalf("linker size = %d", l.Len())
	}
	_ = useragent.Chrome // keep import set stable
}
