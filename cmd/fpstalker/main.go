// Command fpstalker runs the FP-Stalker evaluation sweeps behind the
// paper's Figures 9 and 10: matching time and F1/precision/recall of
// the rule-based and learning-based linkers as the fingerprint database
// grows, plus the Figure 11 false-positive/negative case studies.
//
// Usage:
//
//	fpstalker -bench time -sizes 1000,5000,20000
//	fpstalker -bench f1 -users 3000 -variant both
//	fpstalker -bench cases
//
// By default both FP-Stalker variants run on the blocked, parallel
// matching engine. To reproduce the paper's Figure 9 linear-scan
// numbers, disable both levers:
//
//	fpstalker -bench time -noblocking -workers 1
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"os"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/linker"
	"fpdyn/internal/mlearn"
	"fpdyn/internal/population"
	"fpdyn/internal/textplot"
	"fpdyn/internal/useragent"
)

func main() {
	bench := flag.String("bench", "time", "what to run: time (Figure 9), f1 (Figure 10), cases (Figure 11)")
	users := flag.Int("users", 2000, "simulated users for f1 sweep")
	seed := flag.Int64("seed", 1, "simulation seed")
	sizes := flag.String("sizes", "1000,2000,5000,10000", "database sizes for the time sweep")
	variant := flag.String("variant", "both", "rule, learning, or both")
	k := flag.Int("k", 10, "top-k candidates (the paper reports top 10)")
	noBlocking := flag.Bool("noblocking", false, "disable candidate blocking — the paper's full linear scan (Figure 9 ablation)")
	workers := flag.Int("workers", 0, "scoring workers per query: 0 = all cores, 1 = serial")
	flag.Parse()

	cfg := engineCfg{noBlocking: *noBlocking, workers: *workers}
	switch *bench {
	case "time":
		benchTime(parseSizes(*sizes), *variant, *seed, *k, cfg)
	case "f1":
		benchF1(*users, *variant, *seed, *k, cfg)
	case "cases":
		benchCases()
	case "chains":
		benchChains(*users, *seed, cfg)
	default:
		log.Fatalf("fpstalker: unknown bench %q", *bench)
	}
}

// engineCfg carries the matching-engine flags into each sweep.
type engineCfg struct {
	noBlocking bool
	workers    int
}

func (c engineCfg) rule() *fpstalker.RuleLinker {
	l := fpstalker.NewRuleLinker()
	l.NoBlocking = c.noBlocking
	l.Workers = c.workers
	return l
}

func (c engineCfg) learn(f *mlearn.Forest) *fpstalker.LearnLinker {
	l := fpstalker.NewLearnLinker(f)
	l.NoBlocking = c.noBlocking
	l.Workers = c.workers
	return l
}

func (c engineCfg) String() string {
	mode := "blocking on"
	if c.noBlocking {
		mode = "linear scan"
	}
	w := "all cores"
	switch {
	case c.workers == 1:
		w = "serial"
	case c.workers > 1:
		w = fmt.Sprintf("%d workers", c.workers)
	}
	return mode + ", " + w
}

func parseSizes(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			log.Fatalf("fpstalker: bad size %q", part)
		}
		out = append(out, n)
	}
	return out
}

// worldFor simulates enough users to yield at least n records.
func worldFor(n int, seed int64) *population.Dataset {
	users := n / 3
	if users < 200 {
		users = 200
	}
	for {
		cfg := population.DefaultConfig(users)
		cfg.Seed = seed
		ds := population.Simulate(cfg)
		if len(ds.Records) >= n || users > 64*n {
			return ds
		}
		users *= 2
	}
}

// benchTime reproduces Figure 9: mean matching time per query as the
// database grows. Queries are evolved fingerprints (non-exact), the
// expensive path.
func benchTime(sizes []int, variant string, seed int64, k int, cfg engineCfg) {
	maxSize := sizes[len(sizes)-1]
	ds := worldFor(maxSize+100, seed)
	fmt.Printf("Figure 9: matching time vs database size (top-%d; engine: %s)\n", k, cfg)
	rows := [][]string{{"db size", "rule-based", "learning-based", "hybrid (Advices 5-8)"}}

	var forest *mlearn.Forest
	if variant != "rule" {
		var err error
		forest, err = fpstalker.TrainPairModel(ds.Records[:maxSize/2], ds.TrueInstance[:maxSize/2],
			mlearn.ForestConfig{Seed: seed, NumTrees: 15, MaxDepth: 8})
		if err != nil {
			log.Fatalf("fpstalker: train: %v", err)
		}
	}

	queries := evolvedQueries(ds, 30)
	for _, size := range sizes {
		if size > len(ds.Records) {
			break
		}
		row := []string{fmt.Sprintf("%d", size)}
		if variant != "learning" {
			rl := cfg.rule()
			fill(rl, ds, size)
			row = append(row, fpstalker.TimeMatching(rl, queries, k).String())
		} else {
			row = append(row, "-")
		}
		if variant != "rule" {
			ll := cfg.learn(forest)
			fill(ll, ds, size)
			row = append(row, fpstalker.TimeMatching(ll, queries, k).String())
		} else {
			row = append(row, "-")
		}
		hy := linker.New()
		fill(hy, ds, size)
		row = append(row, fpstalker.TimeMatching(hy, queries, k).String())
		rows = append(rows, row)
	}
	textplot.Table(os.Stdout, rows)
	fmt.Println("\n(the paper: rule-based grows from ~100ms at 100K to ~1s at 1M; both exceed the 100ms RTB budget)")
}

func fill(l fpstalker.Linker, ds *population.Dataset, size int) {
	for i := 0; i < size && i < len(ds.Records); i++ {
		l.Add(fpstalker.InstanceID(ds.TrueInstance[i]), ds.Records[i])
	}
}

// evolvedQueries crafts non-exact queries: known fingerprints with a
// plausible update applied.
func evolvedQueries(ds *population.Dataset, n int) []*fingerprint.Record {
	var out []*fingerprint.Record
	for i := 0; i < len(ds.Records) && len(out) < n; i += 97 {
		rec := ds.Records[i]
		cp := *rec
		fp := rec.FP.Clone()
		fp.CanvasHash = "evolved-" + strconv.Itoa(i)
		fp.TimezoneOffset += 60
		cp.FP = fp
		cp.Time = rec.Time.Add(24 * time.Hour)
		out = append(out, &cp)
	}
	return out
}

// benchF1 reproduces Figure 10: precision/recall/F1 of top-k linking
// over a full replay, at increasing dataset sizes.
func benchF1(users int, variant string, seed int64, k int, ecfg engineCfg) {
	cfg := population.DefaultConfig(users)
	cfg.Seed = seed
	ds := population.Simulate(cfg)
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	fmt.Printf("Figure 10: precision / recall / F1 for top-%d prediction (engine: %s)\n", k, ecfg)
	rows := [][]string{{"records", "variant", "precision", "recall", "F1", "mean match"}}

	for _, frac := range fractions {
		n := int(frac * float64(len(ds.Records)))
		recs, inst := ds.Records[:n], ds.TrueInstance[:n]
		if variant != "learning" {
			res := fpstalker.Evaluate(ecfg.rule(), recs, inst, k)
			rows = append(rows, f1Row(n, "rule", res))
		}
		if variant != "rule" {
			forest, err := fpstalker.TrainPairModel(recs, inst, mlearn.ForestConfig{Seed: seed, NumTrees: 15, MaxDepth: 8})
			if err != nil {
				log.Fatalf("fpstalker: train: %v", err)
			}
			res := fpstalker.Evaluate(ecfg.learn(forest), recs, inst, k)
			rows = append(rows, f1Row(n, "learning", res))
		}
		res := fpstalker.Evaluate(linker.New(), recs, inst, k)
		rows = append(rows, f1Row(n, "hybrid", res))
	}
	textplot.Table(os.Stdout, rows)
	fmt.Println("\n(the paper: rule-based F1 falls 86.1% → 75.9% from 100K to 1M; learning-based cannot scale past 300K)")
}

func f1Row(n int, variant string, res fpstalker.EvalResult) []string {
	return []string{
		fmt.Sprintf("%d", n), variant,
		fmt.Sprintf("%.3f", res.Precision()),
		fmt.Sprintf("%.3f", res.Recall()),
		fmt.Sprintf("%.3f", res.F1()),
		res.MeanMatchTime.String(),
	}
}

// benchChains runs the chain-reconstruction protocol (FP-Stalker's
// original "tracking duration" metric) for each linker.
func benchChains(users int, seed int64, ecfg engineCfg) {
	cfg := population.DefaultConfig(users)
	cfg.Seed = seed
	ds := population.Simulate(cfg)
	fmt.Printf("Chain reconstruction over %d records (%d true instances; engine: %s)\n",
		len(ds.Records), ds.NumInstances, ecfg)
	rows := [][]string{{"linker", "chains", "avg tracking duration", "chain purity", "split ratio"}}
	for _, v := range []struct {
		name string
		mk   func() fpstalker.Linker
	}{
		{"rule-based", func() fpstalker.Linker { return ecfg.rule() }},
		{"hybrid", func() fpstalker.Linker { return linker.New() }},
	} {
		res := fpstalker.ChainEvaluate(v.mk(), ds.Records, ds.TrueInstance)
		rows = append(rows, []string{
			v.name, fmt.Sprintf("%d", res.Chains),
			res.AvgTrackingDuration.Round(time.Hour).String(),
			fmt.Sprintf("%.3f", res.AvgChainPurity),
			fmt.Sprintf("%.2f", res.SplitRatio),
		})
	}
	textplot.Table(os.Stdout, rows)
	fmt.Println("\n(longer durations and higher purity mean longer, cleaner tracking)")
}

// benchCases walks the four Figure 11 case studies against the
// rule-based linker and prints its verdicts.
func benchCases() {
	fmt.Println("Figure 11: FP-Stalker false positives and negatives")
	base := func() *fingerprint.Record {
		ua := useragent.UA{Browser: useragent.ChromeMobile, BrowserVersion: useragent.V(77, 0, 3865, 92),
			OS: useragent.Android, OSVersion: useragent.V(9), Device: "SM-N960U", Mobile: true}
		return &fingerprint.Record{
			Time: time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC),
			FP: &fingerprint.Fingerprint{
				UserAgent: ua.String(), Accept: "text/html", Encoding: "gzip, deflate, br",
				Language: "en-US,en;q=0.9", HeaderList: []string{"Host"},
				CookieEnabled: true, WebGL: true, LocalStorage: true, TimezoneOffset: 60,
				Languages: []string{"en-US"}, Fonts: []string{"Roboto"}, CanvasHash: "c",
				GPUVendor: "Qualcomm", GPURenderer: "Adreno (TM) 540", GPUType: "OpenGL ES 3.0",
				CPUCores: 4, CPUClass: "ARM", AudioInfo: "channels:2;rate:48000",
				ScreenResolution: "360x740", ColorDepth: 32, PixelRatio: "3",
				ConsLanguage: true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
				GPUImageHash: "g",
			},
		}
	}

	report := func(name string, known, query *fingerprint.Record, expectLinked bool, kind string) {
		l := fpstalker.NewRuleLinker()
		l.Add("known", known)
		cands := l.TopK(query, 10)
		linked := len(cands) > 0
		verdict := "NOT LINKED"
		if linked {
			verdict = "LINKED"
		}
		fmt.Printf("  %-44s → %-10s (%s as the paper reports)\n", name, verdict, kind)
		if linked != expectLinked {
			fmt.Printf("    UNEXPECTED: wanted linked=%v\n", expectLinked)
		}
	}

	// (a) FN: desktop page on a mobile device.
	a1 := base()
	ua, _ := useragent.Parse(a1.FP.UserAgent)
	a2 := base()
	a2.FP.UserAgent = ua.RequestDesktop().String()
	report("(a) desktop page on a mobile browser", a1, a2, false, "false negative")

	// (b) FN: storage disabled.
	b1 := base()
	b2 := base()
	b2.FP.CookieEnabled, b2.FP.LocalStorage = false, false
	report("(b) cookies+localStorage disabled", b1, b2, false, "false negative")

	// (c) FP: different CPU cores.
	c1 := base()
	c2 := base()
	c2.FP.CPUCores = 2
	report("(c) different CPU cores", c1, c2, true, "false positive")

	// (d) FP: different device model.
	d1 := base()
	dua := useragent.UA{Browser: useragent.Samsung, BrowserVersion: useragent.V(6, 2),
		OS: useragent.Android, OSVersion: useragent.V(7, 0), Device: "SM-J330F", Mobile: true}
	d1.FP.UserAgent = dua.String()
	d2 := base()
	dua.Device = "SM-G920F"
	d2.FP.UserAgent = dua.String()
	report("(d) different device model (J330F vs G920F)", d1, d2, true, "false positive")
}
