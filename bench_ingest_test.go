package fpdyn

// The ingest benchmark harness for the collection path: accepted
// records/sec and per-record ACK latency (p50/p99 via internal/obs
// histograms) across the shard-count × wire-framing matrix, plus an
// emitter that writes BENCH_ingest.json so the ingest trajectory is
// tracked across PRs — the collection companion to BENCH_pipeline.json
// and BENCH_forest.json.
//
// Every cell uses the same fsync policy (always — an ACK survives
// power loss), so the matrix isolates two levers: WAL sharding (fsync
// and mutex spread across N shards) and batched binary framing (one
// CRC-framed round trip and one group-commit fsync per touched shard
// per batch, instead of one newline-JSON round trip and one fsync per
// record).
//
//	BENCH_INGEST_OUT=BENCH_ingest.json go test -run TestEmitIngestBench .

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"fpdyn/internal/collector"
	"fpdyn/internal/fingerprint"
	"fpdyn/internal/obs"
	"fpdyn/internal/storage"
)

// ingestRecord builds a deterministic record sized like a real
// submission (~2 KB of JSON with list-valued dedup fields).
func ingestRecord(client, i int) *fingerprint.Record {
	fonts := make([]string, 24)
	for f := range fonts {
		fonts[f] = fmt.Sprintf("Bench Font Family %02d-%02d", i%8, f)
	}
	plugins := []string{"Chrome PDF Plugin", "Native Client", fmt.Sprintf("Widevine %d", i%4)}
	return &fingerprint.Record{
		Time:   time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		UserID: fmt.Sprintf("bench-u-%d-%d", client, i),
		Cookie: fmt.Sprintf("bench-ck-%d", client),
		FP: &fingerprint.Fingerprint{
			UserAgent:        "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/63.0.3239.132 Safari/537.36",
			Accept:           "text/html,application/xhtml+xml",
			Encoding:         "gzip, deflate, br",
			Language:         "en-US,en;q=0.9",
			HeaderList:       []string{"Host", "User-Agent", "Accept", "Accept-Language"},
			Plugins:          plugins,
			CookieEnabled:    true,
			WebGL:            true,
			LocalStorage:     true,
			TimezoneOffset:   60,
			Languages:        []string{"en-US", "en"},
			Fonts:            fonts,
			CanvasHash:       fmt.Sprintf("canvas-%08x", i%16),
			GPUVendor:        "NVIDIA Corporation",
			GPURenderer:      "GeForce GTX 970",
			GPUType:          "ANGLE (Direct3D11)",
			CPUCores:         4,
			AudioInfo:        "channels:2;rate:44100",
			ScreenResolution: "1920x1080",
		},
	}
}

type ingestCell struct {
	Shards        int     `json:"shards"`
	Framing       string  `json:"framing"`
	BatchSize     int     `json:"batch_size"` // 1 for per-record newline-JSON
	Records       int     `json:"records"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	AckP50Ms      float64 `json:"ack_p50_ms"`
	AckP99Ms      float64 `json:"ack_p99_ms"`
}

type ingestReport struct {
	RecordsPerCell int                `json:"records_per_cell"`
	Clients        int                `json:"clients"`
	Fsync          string             `json:"fsync"`
	NumCPU         int                `json:"num_cpu"`
	Cells          []ingestCell       `json:"cells"`
	BinarySpeedup  map[string]float64 `json:"binary_speedup_by_shards"`
}

// runIngestCell drives `records` submissions from `clients` concurrent
// connections into a fresh sharded WAL and reports throughput and ACK
// latency quantiles. Binary cells negotiate framing and send
// 32-record batches; JSON cells stay on per-record newline-JSON — the
// legacy client behavior the fallback path preserves.
func runIngestCell(t *testing.T, shards int, binary bool, records, clients int) ingestCell {
	t.Helper()
	const batchSize = 32
	ss, _, err := storage.RecoverSharded(storage.ShardedWALOptions{
		WALOptions: storage.WALOptions{
			Dir:    t.TempDir(),
			Policy: storage.SyncAlways,
		},
		Shards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.CloseWALs()

	srv := collector.NewServer(ss)
	srv.Logf = func(string, ...any) {}
	srv.DisableBinary = !binary
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	addr := lis.Addr().String()

	// Per-record ACK latency: a record's ACK arrives with its request's
	// reply, so each record in a batch observes the batch round trip.
	hist := obs.NewRegistry().Histogram("bench_ack_seconds", "per-record ack latency", nil)

	perClient := records / clients
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			cid := fmt.Sprintf("bench-c-%d", cl)
			c, err := collector.Dial(addr)
			if err != nil {
				errs[cl] = err
				return
			}
			defer c.Close()
			if binary {
				if _, err := c.Negotiate(); err != nil {
					errs[cl] = err
					return
				}
				for lo := 0; lo < perClient; lo += batchSize {
					hi := lo + batchSize
					if hi > perClient {
						hi = perClient
					}
					batch := make([]collector.BatchRecord, 0, hi-lo)
					for i := lo; i < hi; i++ {
						batch = append(batch, collector.BatchRecord{Rec: ingestRecord(cl, i), Seq: uint64(i + 1)})
					}
					t0 := time.Now()
					acks, err := c.SubmitBatch(batch, cid)
					rtt := time.Since(t0)
					if err != nil {
						errs[cl] = err
						return
					}
					for range acks {
						hist.ObserveDuration(rtt)
					}
				}
			} else {
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					_, _, err := c.SubmitSeq(ingestRecord(cl, i), cid, uint64(i+1))
					if err != nil {
						errs[cl] = err
						return
					}
					hist.ObserveDuration(time.Since(t0))
				}
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for cl, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", cl, err)
		}
	}
	if got := ss.Len(); got != perClient*clients {
		t.Fatalf("accepted %d records, want %d", got, perClient*clients)
	}

	framing := collector.FramingJSON
	bs := 1
	if binary {
		framing = collector.FramingBinary
		bs = batchSize
	}
	snap := hist.Snapshot()
	return ingestCell{
		Shards:        shards,
		Framing:       framing,
		BatchSize:     bs,
		Records:       perClient * clients,
		Seconds:       elapsed.Seconds(),
		RecordsPerSec: float64(perClient*clients) / elapsed.Seconds(),
		AckP50Ms:      snap.P50 * 1e3,
		AckP99Ms:      snap.P99 * 1e3,
	}
}

// TestEmitIngestBench measures the ingest matrix (1/4/8 shards ×
// newline-JSON/batched-binary framing, equal fsync policy) and writes
// BENCH_ingest.json. Gated behind BENCH_INGEST_OUT so the regular
// test run stays fast; `make bench-ingest` sets it.
func TestEmitIngestBench(t *testing.T) {
	out := os.Getenv("BENCH_INGEST_OUT")
	if out == "" {
		t.Skip("set BENCH_INGEST_OUT=<path> to emit the ingest benchmark")
	}
	records := 6000
	if s := os.Getenv("BENCH_INGEST_RECORDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad BENCH_INGEST_RECORDS %q: %v", s, err)
		}
		records = n
	}
	const clients = 2

	rep := ingestReport{
		RecordsPerCell: records,
		Clients:        clients,
		Fsync:          "always",
		NumCPU:         runtime.NumCPU(),
		BinarySpeedup:  map[string]float64{},
	}
	for _, shards := range []int{1, 4, 8} {
		var jsonRPS float64
		for _, binary := range []bool{false, true} {
			cell := runIngestCell(t, shards, binary, records, clients)
			rep.Cells = append(rep.Cells, cell)
			t.Logf("shards=%d framing=%-6s %8.0f rec/s  ack p50=%.2fms p99=%.2fms",
				cell.Shards, cell.Framing, cell.RecordsPerSec, cell.AckP50Ms, cell.AckP99Ms)
			if binary {
				rep.BinarySpeedup[strconv.Itoa(shards)] = cell.RecordsPerSec / jsonRPS
			} else {
				jsonRPS = cell.RecordsPerSec
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: binary speedup by shards %v", out, rep.BinarySpeedup)
}
