module fpdyn

go 1.22
