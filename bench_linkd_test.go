package fpdyn

// The linking-service benchmark: per-query TopK latency through the
// full linkd service path (admission control included) at growing
// table sizes, in both linker modes. The emitter writes
// BENCH_linkd.json so the query-latency trajectory is tracked across
// PRs alongside BENCH_pipeline.json, BENCH_forest.json and
// BENCH_ingest.json — and so the degradation watermarks in cmd/fplinkd
// (-p99-high, -p99-low) can be set from measured numbers rather than
// guesses.
//
// Percentiles are exact: every query's duration is recorded and the
// sorted slice is indexed, not bucketed.
//
//	BENCH_LINKD_OUT=BENCH_linkd.json go test -run TestEmitLinkdBench .

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"fpdyn/internal/fingerprint"
	"fpdyn/internal/fpstalker"
	"fpdyn/internal/linkd"
	"fpdyn/internal/mlearn"
)

// linkdBenchUAs spreads the table across ~20 blocking buckets, the
// shape a real browser population gives the blocking index.
var linkdBenchUAs = func() []string {
	var uas []string
	for _, tmpl := range []string{
		"Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%d.0.3239.132 Safari/537.36",
		"Mozilla/5.0 (Windows NT 6.1; Win64; x64; rv:%d.0) Gecko/20100101 Firefox/%d.0",
		"Mozilla/5.0 (Macintosh; Intel Mac OS X 10_13_%d) AppleWebKit/604.5.6 (KHTML, like Gecko) Version/11.0.%d Safari/604.5.6",
		"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%d.0.3282.140 Safari/537.36",
	} {
		for v := 60; v < 65; v++ {
			n := strings.Count(tmpl, "%d")
			args := make([]any, n)
			for i := range args {
				args[i] = v
			}
			uas = append(uas, fmt.Sprintf(tmpl, args...))
		}
	}
	return uas
}()

// linkdBenchRecord builds the deterministic fingerprint of table
// instance i.
func linkdBenchRecord(i int, t time.Time) *fingerprint.Record {
	return &fingerprint.Record{
		Time:   t,
		UserID: fmt.Sprintf("lb-u-%d", i),
		FP: &fingerprint.Fingerprint{
			UserAgent:        linkdBenchUAs[i%len(linkdBenchUAs)],
			Accept:           "text/html,application/xhtml+xml",
			Encoding:         "gzip, deflate, br",
			Language:         "en-US,en;q=0.9",
			HeaderList:       []string{"Host", "User-Agent", "Accept"},
			Plugins:          []string{"Chrome PDF Plugin", fmt.Sprintf("Widevine %d", i%4)},
			CookieEnabled:    true,
			WebGL:            true,
			LocalStorage:     true,
			TimezoneOffset:   60 * (1 + i%3),
			Languages:        []string{"en-US", "en"},
			Fonts:            []string{"Arial", "Calibri", "Verdana", fmt.Sprintf("Family %02d", i%31)},
			CanvasHash:       fmt.Sprintf("canvas-%08x", i),
			GPUVendor:        "NVIDIA Corporation",
			GPURenderer:      fmt.Sprintf("GeForce GTX %d", 900+10*(i%7)),
			GPUType:          "ANGLE (Direct3D11)",
			CPUCores:         4,
			AudioInfo:        "channels:2;rate:44100",
			ScreenResolution: "1920x1080",
			ColorDepth:       24,
			ConsLanguage:     true, ConsResolution: true, ConsOS: true, ConsBrowser: true,
			GPUImageHash: fmt.Sprintf("gpu-%04x", i%97),
		},
	}
}

// linkdBenchForest trains the pair model on a drifted synthetic stream
// (timezone evolves within an instance), deterministic by seed.
func linkdBenchForest() (*mlearn.Forest, error) {
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	var records []*fingerprint.Record
	var instances []int
	for i := 0; i < 300; i++ {
		for v := 0; v < 3; v++ {
			rec := linkdBenchRecord(i, base.Add(time.Duration(i*3+v)*time.Hour))
			rec.FP.TimezoneOffset = 60 * (v + 1)
			records = append(records, rec)
			instances = append(instances, i)
		}
	}
	return fpstalker.TrainPairModel(records, instances,
		mlearn.ForestConfig{Seed: 11, NumTrees: 10, MaxDepth: 8})
}

type linkdCell struct {
	Entries  int     `json:"entries"`
	Mode     string  `json:"mode"`
	Queries  int     `json:"queries"`
	K        int     `json:"k"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	QPS      float64 `json:"queries_per_sec"`
	BuildSec float64 `json:"table_build_seconds"`

	// Memory columns, measured around this mode's table build.
	// BytesPerEntry is the settled HeapAlloc delta (GC before both
	// reads) divided by the entry count — the resident cost of one
	// stored instance, intern pools and indexes included.
	BytesPerEntry float64 `json:"bytes_per_entry"`
	// InternHitRate is hits/(hits+misses) across the linker's intern
	// pools: the payload-sharing factor the savings come from.
	InternHitRate   float64 `json:"intern_hit_rate"`
	InternUAStrings int     `json:"intern_ua_strings"`
	InternVectors   int     `json:"intern_vectors"`
	// GCPauseBuildMs is the stop-the-world pause total accrued while
	// building this mode's table.
	GCPauseBuildMs float64 `json:"gc_pause_build_ms"`
	// PeakRSSMB is the process's resident high-water mark (VmHWM) when
	// the build finished; 0 where /proc is unavailable. Process-wide
	// and monotonic, so later cells inherit earlier peaks.
	PeakRSSMB float64 `json:"peak_rss_mb"`
}

// measureBuild runs build between two settled heap samples: the
// returned bytes are live-heap growth (signed — GC'd scratch can make
// a small build negative), and gcPauseMs the STW pause total accrued.
func measureBuild(build func()) (sec float64, bytes int64, gcPauseMs float64) {
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	build()
	sec = time.Since(start).Seconds()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	bytes = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	gcPauseMs = float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e6
	return
}

// peakRSSMB reads the process's resident high-water mark from
// /proc/self/status (Linux); 0 elsewhere.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// internHitRate flattens a linker's intern counters to hits/lookups.
func internHitRate(s fpstalker.StoreStats) float64 {
	total := s.InternHits + s.InternMisses
	if total == 0 {
		return 0
	}
	return float64(s.InternHits) / float64(total)
}

type linkdReport struct {
	NumCPU  int         `json:"num_cpu"`
	Workers int         `json:"workers"`
	Cells   []linkdCell `json:"cells"`
	// RuleSpeedupByEntries is mean(learning)/mean(rule) per table size —
	// the factor the degraded mode buys back under overload.
	RuleSpeedupByEntries map[string]float64 `json:"rule_speedup_by_entries"`
}

// runLinkdCell sends `queries` sequential TopK queries through
// svc.Query and reports exact latency percentiles.
func runLinkdCell(t *testing.T, svc *linkd.Service, entries, queries, k int, mode string, buildSec float64) linkdCell {
	t.Helper()
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	durs := make([]time.Duration, 0, queries)
	start := time.Now()
	for j := 0; j < queries; j++ {
		// Evolved re-observation of a deterministic table instance:
		// same stable features, drifted timezone — a non-exact match
		// that exercises the scoring scan, not the exact-match index.
		q := linkdBenchRecord((j*9973+17)%entries, base.Add(time.Hour))
		q.FP.TimezoneOffset = 240
		t0 := time.Now()
		cands, gotMode, err := svc.Query(context.Background(), q, k)
		durs = append(durs, time.Since(t0))
		if err != nil {
			t.Fatalf("%s query %d: %v", mode, j, err)
		}
		if gotMode != mode {
			t.Fatalf("query served by %q, cell expects %q", gotMode, mode)
		}
		if j == 0 && len(cands) == 0 {
			t.Fatalf("%s query returned no candidates at %d entries", mode, entries)
		}
	}
	elapsed := time.Since(start)

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		idx := int(p*float64(len(durs))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return durs[idx].Seconds() * 1e3
	}
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	return linkdCell{
		Entries: entries, Mode: mode, Queries: queries, K: k,
		P50Ms: pct(0.50), P95Ms: pct(0.95), P99Ms: pct(0.99),
		MeanMs:   sum.Seconds() * 1e3 / float64(len(durs)),
		QPS:      float64(queries) / elapsed.Seconds(),
		BuildSec: buildSec,
	}
}

// TestEmitLinkdBench builds linking tables at each configured size,
// measures TopK latency percentiles through the service in rule-based
// and learning-based mode, and writes BENCH_linkd.json. Gated behind
// BENCH_LINKD_OUT; `make bench-linkd` sets it.
func TestEmitLinkdBench(t *testing.T) {
	out := os.Getenv("BENCH_LINKD_OUT")
	if out == "" {
		t.Skip("set BENCH_LINKD_OUT=<path> to emit the linkd benchmark")
	}
	sizes := []int{100_000, 1_000_000}
	if s := os.Getenv("BENCH_LINKD_ENTRIES"); s != "" {
		sizes = sizes[:0]
		for _, part := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				t.Fatalf("BENCH_LINKD_ENTRIES: bad size %q", part)
			}
			sizes = append(sizes, n)
		}
	}
	queries := 200
	if s := os.Getenv("BENCH_LINKD_QUERIES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("BENCH_LINKD_QUERIES: bad count %q", s)
		}
		queries = n
	}
	const k = 10

	forest, err := linkdBenchForest()
	if err != nil {
		t.Fatalf("train forest: %v", err)
	}

	rep := linkdReport{
		NumCPU:               runtime.NumCPU(),
		Workers:              runtime.GOMAXPROCS(0),
		RuleSpeedupByEntries: map[string]float64{},
	}
	base := time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, entries := range sizes {
		// The same record stream feeds both modes, but each linker
		// builds inside its own measured window so the HeapAlloc delta
		// isolates that table's resident cost; each mode then queries
		// through its own service shell (rule-only vs learning-first).
		rule := fpstalker.NewRuleLinker()
		ruleSec, ruleBytes, ruleGCMs := measureBuild(func() {
			for i := 0; i < entries; i++ {
				rule.Add(fmt.Sprintf("lb-i-%d", i), linkdBenchRecord(i, base.Add(time.Duration(i)*time.Second)))
			}
		})
		learn := fpstalker.NewLearnLinker(forest)
		learnSec, learnBytes, learnGCMs := measureBuild(func() {
			for i := 0; i < entries; i++ {
				learn.Add(fmt.Sprintf("lb-i-%d", i), linkdBenchRecord(i, base.Add(time.Duration(i)*time.Second)))
			}
		})
		ruleStats, learnStats := rule.StoreStats(), learn.StoreStats()
		t.Logf("tables built: %d entries, rule %.1fs %.0f B/entry (hit rate %.3f), learning %.1fs %.0f B/entry (hit rate %.3f)",
			entries, ruleSec, float64(ruleBytes)/float64(entries), internHitRate(ruleStats),
			learnSec, float64(learnBytes)/float64(entries), internHitRate(learnStats))

		svcRule, _, err := linkd.Open(linkd.Options{Rule: rule, MaxInFlight: 4, QueueDepth: 16})
		if err != nil {
			t.Fatalf("open rule service: %v", err)
		}
		svcLearn, _, err := linkd.Open(linkd.Options{Rule: rule, Learn: learn, MaxInFlight: 4, QueueDepth: 16})
		if err != nil {
			t.Fatalf("open learning service: %v", err)
		}

		rss := peakRSSMB()
		ruleCell := runLinkdCell(t, svcRule, entries, queries, k, linkd.ModeRule, ruleSec)
		ruleCell.BytesPerEntry = float64(ruleBytes) / float64(entries)
		ruleCell.InternHitRate = internHitRate(ruleStats)
		ruleCell.InternUAStrings = ruleStats.UAStrings
		ruleCell.InternVectors = ruleStats.Vectors
		ruleCell.GCPauseBuildMs = ruleGCMs
		ruleCell.PeakRSSMB = rss
		learnCell := runLinkdCell(t, svcLearn, entries, queries, k, linkd.ModeLearning, learnSec)
		learnCell.BytesPerEntry = float64(learnBytes) / float64(entries)
		learnCell.InternHitRate = internHitRate(learnStats)
		learnCell.InternUAStrings = learnStats.UAStrings
		learnCell.InternVectors = learnStats.Vectors
		learnCell.GCPauseBuildMs = learnGCMs
		learnCell.PeakRSSMB = rss
		rep.Cells = append(rep.Cells, ruleCell, learnCell)
		rep.RuleSpeedupByEntries[strconv.Itoa(entries)] = learnCell.MeanMs / ruleCell.MeanMs
		t.Logf("%d entries: rule p50/p95/p99 = %.2f/%.2f/%.2f ms; learning = %.2f/%.2f/%.2f ms",
			entries, ruleCell.P50Ms, ruleCell.P95Ms, ruleCell.P99Ms,
			learnCell.P50Ms, learnCell.P95Ms, learnCell.P99Ms)

		svcRule.Close()
		svcLearn.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
